#include "runtime/machine.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <sstream>

#include "exec/backend.hpp"
#include "mapping/symbolic.hpp"
#include "persist/snapshot.hpp"
#include "redist/commsets.hpp"
#include "redist/fused.hpp"
#include "redist/kernelgen.hpp"
#include "redist/segments.hpp"
#include "redist/symbolic_plan.hpp"
#include "support/check.hpp"
#include "support/strings.hpp"

namespace hpfc::runtime {

namespace {

using ir::ArrayId;
using ir::CfgKind;
using mapping::ConcreteLayout;
using mapping::Index;

/// Deterministic, order-independent read-checksum weight.
constexpr std::uint64_t weight(std::int64_t linear) {
  return (static_cast<std::uint64_t>(linear) * 2654435761ULL) % 1000003ULL + 1;
}

/// Value stamped by the `counter`-th write event at element `linear`.
constexpr double stamped(std::uint64_t counter, std::int64_t linear) {
  return static_cast<double>(counter * 1009ULL +
                             static_cast<std::uint64_t>(linear % 997));
}

/// One statically mapped version of one array: a local piece per rank.
struct VersionStorage {
  bool allocated = false;
  bool live = false;
  /// May have been written since the last snapshot: the snapshot writer
  /// re-hashes dirty versions' owned runs (and only those) to find the
  /// changed leaves. Conservative — a no-op write leaves clean leaves
  /// and costs a re-hash, never a journal record.
  bool dirty = false;
  std::vector<std::vector<double>> locals;  ///< per layout rank
  std::uint64_t bytes = 0;
};

/// The compiled ownership of one rank under one layout: the rank's owned
/// product set as bulk strided stretches over (local position, global
/// row-major linear) space, plus whether the rank is a sending owner
/// (under replication only coordinate-0 replicas send, so elements are
/// read/packed exactly once; the sending set is full-or-empty per rank).
struct RankOwnership {
  std::vector<mapping::OwnedRun> runs;
  bool sends = true;
};

/// Per-(array, version) ownership program, cached like plan slots: every
/// per-element runtime loop (checksums, write stamping, live-region
/// clears, copy verification) executes these precompiled stretches
/// instead of re-deriving ownership per element.
struct OwnershipProgram {
  std::vector<RankOwnership> per_rank;  ///< indexed by layout rank
};

/// Per copy-site compiled transfer programs plus pooled buffers: the
/// segment programs are compiled once per codegen plan slot; payload and
/// mailbox buffers are recycled across executions so steady-state
/// remapping loops re-run with no per-copy payload allocation.
struct PlanSlot {
  bool compiled = false;
  std::vector<redist::SegmentProgram> programs;
  /// Specialized pack/unpack kernels, one per program (same indexing),
  /// installed at compile time unless RunOptions::interpret_kernels; the
  /// vector never reallocates afterwards, so FusedSlot may point into it.
  std::vector<redist::Kernel> kernels;
  /// Payload buffer per program (tag); moved into the message on pack and
  /// reclaimed from the inbox after unpack.
  std::vector<std::vector<double>> payload_pool;
  /// Recycled outbox/inbox skeleton (outer and inner vector capacities).
  std::vector<std::vector<net::Message>> mailbox_pool;
  /// The symbolic plan instance this slot compiled from (nullptr for
  /// unabstractable pairs and under RunOptions::concrete_plans). Instances
  /// are shared across slots; the machine refcounts their footprint so a
  /// shared instance is charged once and survives until its last slot is
  /// evicted.
  std::shared_ptr<const redist::PlanInstance> instance;
  /// Heap footprint of the compiled programs + kernels, charged against
  /// the memory limit (plan slots are evictable like array copies). The
  /// shared instance's bytes are accounted separately (refcounted).
  std::uint64_t plan_bytes = 0;
};

/// One Copy op recorded while its vertex's guard code runs: the data
/// movement is deferred so every copy the vertex fires can share a single
/// fused exchange superstep. (array, versions) are fixed by the plan slot,
/// but are kept for direct storage addressing at flush time.
struct PendingCopy {
  ArrayId array = -1;
  int src = -1;
  int dst = -1;
  int plan_slot = -1;
};

/// One cached fused communication round (per distinct fired-member set):
/// combined-message framing over the member plan slots' SegmentPrograms,
/// plus pooled per-message payloads and a recycled mailbox skeleton —
/// the group-level analogue of PlanSlot.
struct FusedSlot {
  std::vector<PendingCopy> members;
  /// members[m]'s compiled programs (borrowed from its PlanSlot).
  std::vector<const std::vector<redist::SegmentProgram>*> programs;
  /// members[m]'s specialized kernels (borrowed from its PlanSlot; the
  /// pointed-to vector is empty under RunOptions::interpret_kernels).
  /// Cached fused slots are invalidated whenever a member plan slot is
  /// evicted, so these pointers never dangle.
  std::vector<const std::vector<redist::Kernel>*> kernels;
  /// members[m]'s (source, destination) version storage. VersionStorage
  /// objects are allocated once at machine construction, so the pointers
  /// are stable for the whole run.
  std::vector<std::pair<VersionStorage*, VersionStorage*>> endpoints;
  redist::FusedExchange exchange;
  std::vector<std::vector<double>> payload_pool;  ///< per message table entry
  std::vector<std::vector<net::Message>> mailbox_pool;
};

/// Per-rank counters written inside a copy superstep (each rank owns its
/// slot) and reduced on the controlling thread after the barrier.
struct CopyTally {
  std::uint64_t local_copies = 0;
  std::uint64_t local_bytes = 0;
  std::uint64_t local_segments = 0;
  std::uint64_t local_elements = 0;
  std::uint64_t packed_bytes = 0;
  std::uint64_t unpacked = 0;
  /// Transfers this rank executed through a specialized kernel at the
  /// producing site (pack or local copy; unpacks are not re-counted).
  std::uint64_t specialized = 0;

  friend bool operator==(const CopyTally&, const CopyTally&) = default;
};

class Machine {
 public:
  Machine(const ir::Program& program, const remap::Analysis& analysis,
          const codegen::RuntimeProgram* code, const RunOptions& options)
      : program_(program),
        analysis_(analysis),
        code_(code),
        options_(options),
        rng_(options.seed),
        // The oracle has no per-rank work worth threading; it always runs
        // on the sequential backend regardless of the requested one.
        backend_(exec::make_backend(
            code != nullptr ? options.backend : exec::BackendKind::Seq,
            machine_ranks(program, options), options.cost, options.threads,
            exec::ProcConfig{options.proc_tcp, options.proc_timeout_ms,
                             options.no_pipeline})) {
    const std::size_t num_arrays = program_.arrays.size();
    status_.assign(num_arrays, 0);
    storage_.resize(num_arrays);
    ownership_.resize(num_arrays);
    canonical_.resize(num_arrays);
    for (std::size_t a = 0; a < num_arrays; ++a) {
      if (!program_.arrays[a].has_mapping) continue;
      canonical_[a].assign(
          static_cast<std::size_t>(program_.arrays[a].shape.total()), 0.0);
      const auto versions = static_cast<std::size_t>(
          analysis_.version_count(static_cast<ArrayId>(a)));
      storage_[a].resize(versions);
      ownership_[a].resize(versions);
    }
    saved_.assign(code_ != nullptr ? static_cast<std::size_t>(code_->save_slots)
                                   : 0,
                  -1);
    plan_slots_.resize(
        code_ != nullptr ? static_cast<std::size_t>(code_->plan_slots) : 0);
    families_.resize(code_ != nullptr
                         ? static_cast<std::size_t>(code_->plan_family_count)
                         : 0);
    partials_.assign(static_cast<std::size_t>(backend_->ranks()), 0);
    copy_tallies_.assign(static_cast<std::size_t>(backend_->ranks()),
                         CopyTally{});
    if (parallel() && !options_.snapshot_dir.empty())
      snapshot_writer_ =
          std::make_unique<persist::SnapshotWriter>(options_.snapshot_dir);
    if (parallel()) {
      // Dummy arguments arrive allocated by the caller with the imported
      // values (zeros initially, like the canonical array).
      for (const ArrayId a : program_.mapped_arrays())
        if (program_.array(a).is_dummy) allocate(a, 0);
    }
  }

  RunReport run() {
    const auto start = std::chrono::steady_clock::now();
    run_program();
    if (snapshot_writer_ != nullptr) {
      const persist::SnapshotStats& snap = snapshot_writer_->stats();
      report_.snapshot_bytes = snap.bytes;
      report_.snapshot_runs_written = snap.runs_written;
      report_.snapshot_ms = snap.ms;
    }
    report_.net = backend_->stats();
    report_.ranks = backend_->ranks();
    report_.backend = backend_->name();
    report_.threads = backend_->workers();
    report_.wire_bytes = backend_->wire().wire_bytes;
    report_.wire_msgs = backend_->wire().wire_msgs;
    report_.proc_spawns = backend_->wire().proc_spawns;
    report_.exec_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    return report_;
  }

 private:
  void run_program() {
    if (parallel())
      for (const auto& op : code_->at_entry) execute(op);

    int node = analysis_.cfg.entry();
    std::map<int, mapping::Extent> loop_trips;
    while (true) {
      const ir::CfgNode& n = analysis_.cfg.node(node);
      if (n.kind != CfgKind::CallPost && parallel()) {
        for (const auto& op : code_->at_node[static_cast<std::size_t>(node)])
          execute(op);
        // The node's guard code is done: run its vertex's fused
        // communication round before the node semantics read anything.
        flush_pending();
        // The store is quiescent between the vertex's communication and
        // the node semantics: a crash-consistent snapshot boundary.
        if (!code_->at_node[static_cast<std::size_t>(node)].empty())
          maybe_snapshot();
      }

      bool done = false;
      int next = n.succs.empty() ? -1 : n.succs[0];
      switch (n.kind) {
        case CfgKind::Exit: {
          if (parallel()) {
            check_exported(n);
            // Seal the final store before the exit cleanup frees it, so
            // the last sealed epoch always captures the program's result.
            take_snapshot();
            for (const auto& op : code_->at_exit) execute(op);
          }
          done = true;
          break;
        }
        case CfgKind::Plain:
          if (n.stmt != nullptr) {
            if (const auto* ref = std::get_if<ir::RefStmt>(&n.stmt->node))
              execute_ref(node, *ref);
            else if (const auto* live =
                         std::get_if<ir::LiveRegionStmt>(&n.stmt->node))
              execute_live_region(*live);
            else if (const auto* kill =
                         std::get_if<ir::KillStmt>(&n.stmt->node))
              execute_kill(*kill);
          }
          break;
        case CfgKind::Branch: {
          const auto& ifs = std::get<ir::IfStmt>(n.stmt->node);
          for (const ArrayId a : ifs.cond_reads) touch_read(node, a);
          const bool take_then = (rng_() & 1u) != 0;
          next = take_then ? n.succs[0] : n.succs[1];
          break;
        }
        case CfgKind::LoopHead: {
          const auto& loop = std::get<ir::LoopStmt>(n.stmt->node);
          if (loop.may_zero_trip) {
            auto [it, inserted] = loop_trips.try_emplace(node, loop.trip_count);
            if (it->second > 0) {
              --it->second;
              next = n.succs[0];  // enter the body
            } else {
              loop_trips.erase(it);
              next = n.succs.size() > 1 ? n.succs[1] : n.succs[0];
            }
          } else {
            next = n.succs[0];
          }
          break;
        }
        case CfgKind::LoopLatch: {
          const auto& loop = std::get<ir::LoopStmt>(n.stmt->node);
          auto [it, inserted] = loop_trips.try_emplace(node, loop.trip_count);
          if (inserted) --it->second;  // the first trip just completed
          if (it->second > 0) {
            --it->second;
            next = n.succs[0];  // back edge
          } else {
            loop_trips.erase(it);
            next = n.succs[1];
          }
          break;
        }
        case CfgKind::Call: {
          const auto& call = std::get<ir::CallStmt>(n.stmt->node);
          const auto& itf = program_.interface(call.interface_id);
          for (std::size_t i = 0; i < call.args.size(); ++i) {
            const ArrayId a = call.args[i];
            if (!program_.array(a).has_mapping) continue;
            switch (itf.dummies[i].intent) {
              case ir::Intent::In:
                touch_read(node, a);
                break;
              case ir::Intent::Out:
                touch_write(node, a);
                break;
              case ir::Intent::InOut:
                touch_read(node, a);
                touch_write(node, a);
                break;
            }
          }
          break;
        }
        default:
          break;
      }
      if (n.kind == CfgKind::CallPost && parallel()) {
        for (const auto& op : code_->at_node[static_cast<std::size_t>(node)])
          execute(op);
        flush_pending();
        if (!code_->at_node[static_cast<std::size_t>(node)].empty())
          maybe_snapshot();
      }
      if (done) break;
      HPFC_ASSERT_MSG(next >= 0, "control fell off the CFG");
      node = next;
      if (options_.paranoid && parallel()) check_liveness_invariant();
    }
  }

  [[nodiscard]] bool parallel() const { return code_ != nullptr; }

  static int machine_ranks(const ir::Program& program,
                           const RunOptions& options) {
    if (options.ranks > 0) return options.ranks;
    mapping::Extent max_ranks = 1;
    for (const auto& p : program.procs)
      max_ranks = std::max(max_ranks, p.shape.total());
    return static_cast<int>(max_ranks);
  }

  const ConcreteLayout& layout(ArrayId a, int version) const {
    return analysis_.versions[static_cast<std::size_t>(a)].layout(version);
  }

  // ---- storage management ------------------------------------------------

  void allocate(ArrayId a, int version) {
    auto& vs = storage_[static_cast<std::size_t>(a)]
                       [static_cast<std::size_t>(version)];
    if (vs.allocated) return;
    const ConcreteLayout& lay = layout(a, version);
    vs.locals.resize(static_cast<std::size_t>(lay.ranks()));
    vs.bytes = 0;
    std::vector<mapping::Extent> counts(static_cast<std::size_t>(lay.ranks()));
    for (int r = 0; r < lay.ranks(); ++r) {
      const mapping::Extent count = lay.local_count(r);
      counts[static_cast<std::size_t>(r)] = count;
      vs.bytes += static_cast<std::uint64_t>(count) * sizeof(double);
    }
    // Each rank zero-fills its own local piece in its execution context.
    backend_->step([&](int r) {
      if (r >= lay.ranks()) return;
      vs.locals[static_cast<std::size_t>(r)].assign(
          static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]), 0.0);
    });
    vs.allocated = true;
    vs.dirty = true;
    ++report_.allocations;
    bytes_in_use_ += vs.bytes;
    if (options_.memory_limit != 0 && bytes_in_use_ > options_.memory_limit)
      evict_until_fits(a, version);
    report_.peak_bytes = std::max(report_.peak_bytes, bytes_in_use_);
  }

  void deallocate(ArrayId a, int version) {
    auto& vs = storage_[static_cast<std::size_t>(a)]
                       [static_cast<std::size_t>(version)];
    if (!vs.allocated) return;
    bytes_in_use_ -= vs.bytes;
    vs.locals.clear();
    vs.allocated = false;
    vs.live = false;
    ++report_.frees;
  }

  /// §5.2: under memory pressure the runtime frees live non-current copies
  /// and clears their liveness; they are regenerated with communication if
  /// needed again. Largest victims go first: every eviction is a future
  /// regeneration copy, so freeing one big copy beats squeezing out many
  /// small ones.
  void evict_until_fits(ArrayId keep_array, int keep_version) {
    std::vector<std::pair<std::uint64_t, std::pair<std::size_t, std::size_t>>>
        victims;
    for (std::size_t a = 0; a < storage_.size(); ++a) {
      for (std::size_t v = 0; v < storage_[a].size(); ++v) {
        const auto& vs = storage_[a][v];
        if (!vs.allocated) continue;
        const bool is_current = static_cast<int>(v) == status_[a];
        const bool is_keep = static_cast<int>(a) == keep_array &&
                             static_cast<int>(v) == keep_version;
        const bool is_dummy_origin = program_.arrays[a].is_dummy && v == 0;
        if (is_current || is_keep || is_dummy_origin) continue;
        // Versions referenced by a pending fused round are pinned: their
        // data has not moved yet (a deferred source may no longer be the
        // current status once its vertex's SetStatus has run).
        if (pinned(static_cast<ArrayId>(a), static_cast<int>(v))) continue;
        victims.push_back({vs.bytes, {a, v}});
      }
    }
    std::sort(victims.begin(), victims.end(),
              [](const auto& x, const auto& y) {
                if (x.first != y.first) return x.first > y.first;
                return x.second < y.second;  // deterministic tie-break
              });
    for (const auto& [bytes, id] : victims) {
      if (bytes_in_use_ <= options_.memory_limit) break;
      deallocate(static_cast<ArrayId>(id.first), static_cast<int>(id.second));
      ++report_.evictions;
    }
    // Storage eviction alone may not reach the budget (everything left is
    // current, pinned, or a dummy origin): fall back to dropping compiled
    // plan slots, which recompile — and re-specialize — lazily on their
    // next Copy.
    if (bytes_in_use_ > options_.memory_limit) evict_plan_slots(-1);
  }

  [[nodiscard]] bool pinned(ArrayId a, int v) const {
    for (const PendingCopy& m : pending_)
      if (m.array == a && (m.src == v || m.dst == v)) return true;
    return false;
  }

  /// Second-phase eviction (the plan-cache analogue of §5.2): drops
  /// compiled plan slots — segment programs, specialized kernels, pooled
  /// buffers — largest first until the budget fits. An evicted slot is
  /// recompiled on its next use, so specialized_kernels rises while every
  /// data-volume counter stays put.
  void evict_plan_slots(int keep_slot) {
    std::vector<std::pair<std::uint64_t, std::size_t>> victims;
    for (std::size_t s = 0; s < plan_slots_.size(); ++s) {
      const PlanSlot& slot = plan_slots_[s];
      if (!slot.compiled || slot.plan_bytes == 0) continue;
      if (static_cast<int>(s) == keep_slot) continue;
      if (plan_pinned(static_cast<int>(s))) continue;
      victims.push_back({slot.plan_bytes, s});
    }
    std::sort(victims.begin(), victims.end(),
              [](const auto& x, const auto& y) {
                if (x.first != y.first) return x.first > y.first;
                return x.second < y.second;  // deterministic tie-break
              });
    for (const auto& [bytes, s] : victims) {
      if (bytes_in_use_ <= options_.memory_limit) break;
      drop_plan_slot(s);
    }
  }

  /// A plan slot referenced by the open fused round must survive until its
  /// flush: pending_ members' compiled programs are already borrowed by
  /// the round being assembled.
  [[nodiscard]] bool plan_pinned(int slot) const {
    for (const PendingCopy& m : pending_)
      if (m.plan_slot == slot) return true;
    return false;
  }

  void drop_plan_slot(std::size_t s) {
    bytes_in_use_ -= plan_slots_[s].plan_bytes;
    // The slot's reference on its shared symbolic instance goes with it;
    // the instance itself is only un-charged when the last slot using it
    // is dropped (release_instance refcounts).
    release_instance(plan_slots_[s].instance);
    plan_slots_[s] = PlanSlot{};
    // Cached fused rounds borrow pointers into their member plan slots'
    // programs and kernels; invalidate every round that references this
    // slot so the pointers can never dangle.
    std::erase_if(fused_slots_, [&](const auto& kv) {
      return std::find(kv.first.begin(), kv.first.end(),
                       static_cast<int>(s)) != kv.first.end();
    });
    ++report_.plan_evictions;
  }

  /// Heap footprint of a compiled slot's patched tables: the interpreted
  /// segment list plus (when installed) the specialized kernels.
  static std::uint64_t plan_slot_bytes(const PlanSlot& slot) {
    std::uint64_t bytes = 0;
    for (const auto& tp : slot.programs)
      bytes += tp.segments.capacity() * sizeof(redist::CopySegment);
    for (const auto& kernel : slot.kernels) bytes += kernel.footprint_bytes();
    return bytes;
  }

  // ---- generated code execution -----------------------------------------

  void execute(const codegen::Op& op) {
    using codegen::OpKind;
    auto& versions = storage_[static_cast<std::size_t>(op.array)];
    switch (op.kind) {
      case OpKind::IfStatusNe:
        if (status_[static_cast<std::size_t>(op.array)] != op.version) {
          for (const auto& child : op.body) execute(child);
        } else {
          ++report_.skipped_already_mapped;
        }
        break;
      case OpKind::IfStatusEq:
        if (status_[static_cast<std::size_t>(op.array)] == op.version)
          for (const auto& child : op.body) execute(child);
        break;
      case OpKind::IfNotLive:
        if (!versions[static_cast<std::size_t>(op.version)].live) {
          for (const auto& child : op.body) execute(child);
        } else {
          ++report_.skipped_live_copy;
        }
        break;
      case OpKind::IfLive:
        if (versions[static_cast<std::size_t>(op.version)].live)
          for (const auto& child : op.body) execute(child);
        break;
      case OpKind::Allocate:
        allocate(op.array, op.version);
        break;
      case OpKind::Copy:
        if (op.copy_group >= 0 && !options_.unfuse_copy_groups)
          defer_copy(op);
        else
          copy(op.array, op.src_version, op.version, op.region, op.plan_slot);
        break;
      case OpKind::SetLive:
        versions[static_cast<std::size_t>(op.version)].live = op.flag;
        break;
      case OpKind::SetStatus:
        status_[static_cast<std::size_t>(op.array)] = op.version;
        break;
      case OpKind::Free:
        // While a fused round is pending, frees hold until after the
        // flush (a member's source may be scheduled for cleanup by the
        // very ops that follow its Copy); order is preserved.
        if (pending_group_ >= 0)
          deferred_frees_.push_back({op.array, op.version});
        else
          deallocate(op.array, op.version);
        break;
      case OpKind::SaveStatus:
        saved_[static_cast<std::size_t>(op.slot)] =
            status_[static_cast<std::size_t>(op.array)];
        break;
      case OpKind::IfSavedEq:
        if (saved_[static_cast<std::size_t>(op.slot)] == op.version)
          for (const auto& child : op.body) execute(child);
        break;
    }
  }

  /// §4.3 live-region semantics: elements outside the region are dead and
  /// read as zero from here on — in the canonical values and in every
  /// live copy (a purely local operation).
  void execute_live_region(const ir::LiveRegionStmt& live) {
    if (!program_.array(live.array).has_mapping) return;
    const auto& shape = program_.array(live.array).shape;
    const int dims = shape.rank();
    if (dims == 0) return;  // a scalar has no region to clip
    auto& canonical = canonical_[static_cast<std::size_t>(live.array)];
    // Canonical values: one incremental row-major coordinate walk.
    {
      mapping::IndexVec coord(static_cast<std::size_t>(dims), 0);
      const mapping::Extent total = shape.total();
      for (Index lin = 0; lin < total; ++lin) {
        for (int d = 0; d < dims; ++d) {
          const Index c = coord[static_cast<std::size_t>(d)];
          if (c < live.region[static_cast<std::size_t>(d)].first ||
              c >= live.region[static_cast<std::size_t>(d)].second) {
            canonical[static_cast<std::size_t>(lin)] = 0.0;
            break;
          }
        }
        for (int d = dims - 1; d >= 0; --d) {
          if (++coord[static_cast<std::size_t>(d)] < shape.extent(d)) break;
          coord[static_cast<std::size_t>(d)] = 0;
        }
      }
    }
    if (!parallel()) return;
    const auto [inner_lo, inner_hi] =
        live.region[static_cast<std::size_t>(dims - 1)];
    auto& versions = storage_[static_cast<std::size_t>(live.array)];
    for (std::size_t v = 0; v < versions.size(); ++v) {
      auto& vs = versions[v];
      if (!vs.allocated) continue;
      const ConcreteLayout& lay = layout(live.array, static_cast<int>(v));
      const OwnershipProgram& own = ownership(live.array, static_cast<int>(v));
      backend_->step([&](int r) {
        if (r >= lay.ranks()) return;
        auto& local = vs.locals[static_cast<std::size_t>(r)];
        for (const mapping::OwnedRun& run :
             own.per_rank[static_cast<std::size_t>(r)].runs) {
          double* vals = local.data() + run.local_base;
          // A stretch varies only the innermost dimension: one outer
          // bounds check, then closed-form inner clipping.
          const mapping::IndexVec coord = shape.delinearize(run.global_base);
          bool outer_inside = true;
          for (int d = 0; d + 1 < dims; ++d) {
            const Index c = coord[static_cast<std::size_t>(d)];
            if (c < live.region[static_cast<std::size_t>(d)].first ||
                c >= live.region[static_cast<std::size_t>(d)].second) {
              outer_inside = false;
              break;
            }
          }
          if (!outer_inside) {
            std::fill_n(vals, run.len, 0.0);
            continue;
          }
          const Index c0 = coord[static_cast<std::size_t>(dims - 1)];
          const mapping::Extent st = run.global_stride;
          // First member inside and first member past the inner window.
          const mapping::Extent j_lo = std::clamp<mapping::Extent>(
              inner_lo <= c0 ? 0 : (inner_lo - c0 + st - 1) / st, 0, run.len);
          const mapping::Extent j_hi = std::clamp<mapping::Extent>(
              inner_hi <= c0 ? 0 : (inner_hi - c0 + st - 1) / st, 0, run.len);
          std::fill_n(vals, j_lo, 0.0);
          if (j_hi < run.len) std::fill_n(vals + j_hi, run.len - j_hi, 0.0);
        }
      });
      vs.dirty = true;
    }
  }

  /// §4.3 kill semantics: the whole array is dead and reads as zero from
  /// here on — the full-array case of execute_live_region. The dead value
  /// must be deterministic: O0 still moves killed data at the next remap
  /// while O1/O2 skip the transfer (fresh allocations are zero-filled), so
  /// a program that reads an array after killing it only stays
  /// oracle-identical across levels if every dead element reads as zero.
  void execute_kill(const ir::KillStmt& kill) {
    if (!program_.array(kill.array).has_mapping) return;
    auto& canonical = canonical_[static_cast<std::size_t>(kill.array)];
    std::fill(canonical.begin(), canonical.end(), 0.0);
    if (!parallel()) return;
    auto& versions = storage_[static_cast<std::size_t>(kill.array)];
    for (auto& vs : versions) {
      if (!vs.allocated) continue;
      backend_->step([&](int r) {
        if (r >= static_cast<int>(vs.locals.size())) return;
        auto& local = vs.locals[static_cast<std::size_t>(r)];
        std::fill(local.begin(), local.end(), 0.0);
      });
      vs.dirty = true;
    }
  }

  /// The shared superstep skeleton of all remap communication (per-copy
  /// and fused): recycled mailboxes and per-rank tallies around ONE
  /// exchange. `pack_rank(r, outbox, tally)` emits rank r's messages
  /// (payloads drawn from `payload_pool` by tag) and runs its local
  /// fast-path copies; `unpack_msg(r, msg)` scatters one routed message.
  /// Everything else — tally reduction, account_local, unpacked-element
  /// accounting, payload reclamation by tag, mailbox-skeleton recycling —
  /// lives here exactly once so the fused and unfused paths cannot drift
  /// apart in their NetStats arithmetic.
  /// Runs one phase's rank loop through the backend (per-rank concurrency
  /// on thread/proc) or, under RunOptions::no_pipeline, as a plain serial
  /// loop on the controller thread — the phased differential oracle. Both
  /// visit every rank exactly once over rank-owned state, so results and
  /// counters are identical by construction. Returns the phase's
  /// wall-clock in milliseconds.
  template <typename Fn>
  double phase_step(const Fn& fn) {
    const auto start = std::chrono::steady_clock::now();
    if (options_.no_pipeline) {
      for (int r = 0; r < backend_->ranks(); ++r) fn(r);
    } else {
      backend_->step(fn);
    }
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  }

  template <typename PackRank, typename UnpackMsg>
  void copy_superstep(std::vector<std::vector<double>>& payload_pool,
                      std::vector<std::vector<net::Message>>& mailbox_pool,
                      const PackRank& pack_rank, const UnpackMsg& unpack_msg) {
    auto outboxes = std::move(mailbox_pool);
    outboxes.resize(static_cast<std::size_t>(backend_->ranks()));
    for (auto& box : outboxes) box.clear();
    std::fill(copy_tallies_.begin(), copy_tallies_.end(), CopyTally{});
    report_.pack_ms += phase_step([&](int r) {
      pack_rank(r, outboxes[static_cast<std::size_t>(r)],
                copy_tallies_[static_cast<std::size_t>(r)]);
    });
    std::uint64_t local_copies = 0;
    std::uint64_t local_bytes = 0;
    std::uint64_t local_segments = 0;
    std::uint64_t specialized = 0;
    for (const CopyTally& tally : copy_tallies_) {
      local_copies += tally.local_copies;
      local_bytes += tally.local_bytes;
      local_segments += tally.local_segments;
      specialized += tally.specialized;
      report_.elements_copied += tally.local_elements;
      report_.packed_bytes += tally.packed_bytes;
    }
    backend_->account_local(local_copies, local_bytes, local_segments);
    if (specialized != 0) backend_->account_specialization(0, specialized);
    report_.local_fastpath_copies += local_copies;

    const auto exchange_start = std::chrono::steady_clock::now();
    auto inboxes = backend_->exchange(std::move(outboxes));
    report_.exchange_ms += std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() -
                               exchange_start)
                               .count();
    std::fill(copy_tallies_.begin(), copy_tallies_.end(), CopyTally{});
    report_.unpack_ms += phase_step([&](int r) {
      CopyTally& tally = copy_tallies_[static_cast<std::size_t>(r)];
      for (const auto& msg : inboxes[static_cast<std::size_t>(r)]) {
        unpack_msg(r, msg);
        tally.unpacked += msg.payload.size();
      }
    });
    for (const CopyTally& tally : copy_tallies_)
      report_.elements_copied += tally.unpacked;
    // Recycle: payload buffers go back to their tag's pool slot, and the
    // routed mailbox skeleton (outer + inner vector capacities) becomes
    // the next execution's outboxes.
    for (auto& inbox : inboxes)
      for (auto& msg : inbox)
        payload_pool[static_cast<std::size_t>(msg.tag)] =
            std::move(msg.payload);
    for (auto& inbox : inboxes) inbox.clear();
    mailbox_pool = std::move(inboxes);
  }

  /// Books one executed local fast-path program into a rank's tally.
  static void tally_local(CopyTally& tally,
                          const redist::SegmentProgram& tp) {
    tally.local_copies += 1;
    tally.local_bytes +=
        static_cast<std::uint64_t>(tp.elements) * sizeof(double);
    tally.local_segments += tp.segments.size();
    tally.local_elements += static_cast<std::uint64_t>(tp.elements);
  }

  /// The remapping communication: redistribute src version into dst,
  /// optionally restricted to a live region. Remote transfers pack into
  /// pooled payload buffers and go through the exchange; src == dst
  /// transfers run as direct strided local copies (no message is ever
  /// materialized) unless RunOptions::force_message_path is set. The
  /// NetStats are byte-identical either way: local copies are accounted
  /// through Backend::account_local with the exact counters a
  /// self-message would have produced.
  void copy(ArrayId a, int src, int dst, const ir::Region& region,
            int plan_slot) {
    allocate(a, src);  // an untouched source is all zeros, like canonical
    allocate(a, dst);
    PlanSlot& slot = transfer_plan(a, src, dst, region, plan_slot);
    const auto& programs = slot.programs;
    const auto& kernels = slot.kernels;
    // Empty under RunOptions::interpret_kernels: fall back to the
    // interpreted segment walker (the differential oracle of the kernels).
    const bool use_kernels = !kernels.empty();
    const bool fast_local = !options_.force_message_path;

    auto& from = storage_[static_cast<std::size_t>(a)]
                         [static_cast<std::size_t>(src)];
    auto& to =
        storage_[static_cast<std::size_t>(a)][static_cast<std::size_t>(dst)];
    // Each source rank packs its own transfers, in program (tag) order so
    // emission order — and with it the inbox order — is backend-invariant.
    copy_superstep(
        slot.payload_pool, slot.mailbox_pool,
        [&](int r, std::vector<net::Message>& outbox, CopyTally& tally) {
          for (std::size_t t = 0; t < programs.size(); ++t) {
            const redist::SegmentProgram& tp = programs[t];
            if (tp.src != r) continue;
            if (fast_local && tp.dst == r) {
              if (use_kernels) {
                kernels[t].copy(from.locals[static_cast<std::size_t>(r)],
                                to.locals[static_cast<std::size_t>(r)]);
                ++tally.specialized;
              } else {
                redist::copy_local(tp, from.locals[static_cast<std::size_t>(r)],
                                   to.locals[static_cast<std::size_t>(r)]);
              }
              tally_local(tally, tp);
              continue;
            }
            net::Message msg;
            msg.src = tp.src;
            msg.dst = tp.dst;
            msg.tag = static_cast<int>(t);
            msg.segments = static_cast<int>(tp.segments.size());
            msg.payload = std::move(slot.payload_pool[t]);
            if (use_kernels) {
              msg.payload.resize(static_cast<std::size_t>(tp.elements));
              kernels[t].pack(from.locals[static_cast<std::size_t>(tp.src)],
                              msg.payload);
              ++tally.specialized;
            } else {
              redist::pack(tp, from.locals[static_cast<std::size_t>(tp.src)],
                           msg.payload);
            }
            tally.packed_bytes += msg.bytes();
            outbox.push_back(std::move(msg));
          }
        },
        [&](int, const net::Message& msg) {
          const redist::SegmentProgram& tp =
              programs[static_cast<std::size_t>(msg.tag)];
          // Unpacks are not re-counted in tally.specialized: a transfer's
          // dispatch is booked once, at the producing site.
          if (use_kernels)
            kernels[static_cast<std::size_t>(msg.tag)].unpack(
                msg.payload, to.locals[static_cast<std::size_t>(tp.dst)]);
          else
            redist::unpack(tp, msg.payload,
                           to.locals[static_cast<std::size_t>(tp.dst)]);
        });
    to.dirty = true;
    ++report_.copies_performed;
  }

  PlanSlot& transfer_plan(ArrayId a, int src, int dst,
                          const ir::Region& region, int plan_slot) {
    HPFC_ASSERT_MSG(plan_slot >= 0 &&
                        plan_slot < static_cast<int>(plan_slots_.size()),
                    "Copy op without an assigned plan slot");
    PlanSlot& slot = plan_slots_[static_cast<std::size_t>(plan_slot)];
    if (slot.compiled) return slot;

    const ConcreteLayout& from = layout(a, src);
    const ConcreteLayout& to = layout(a, dst);
    // Two-level plan cache: serve the slot from its symbolic family's
    // bound (N, P) instance when codegen assigned one, falling back to
    // the concrete builder — the differential oracle — for unabstractable
    // pairs and under the concrete_plans A/B toggle. Both paths intersect
    // the same ownership run sets, so the plan is byte-identical.
    const int family = family_of_slot(plan_slot);
    redist::RedistPlanV2 local_plan;
    if (family >= 0 && !options_.concrete_plans)
      slot.instance = acquire_instance(family, from, to);
    else
      local_plan = redist::build_runs(from, to);
    const redist::RedistPlanV2& plan =
        slot.instance != nullptr ? slot.instance->plan : local_plan;
    slot.programs.reserve(plan.transfers.size());
    // Owned run sets are shared across a rank's transfers: one per
    // endpoint rank, never per element.
    std::map<int, std::vector<mapping::IndexRuns>> src_owned;
    std::map<int, std::vector<mapping::IndexRuns>> dst_owned;
    for (const auto& transfer : plan.transfers) {
      // Cached instances are shared across plan slots, so live-region
      // refinement restricts a copy rather than the cached transfer.
      redist::TransferV2 restricted;
      const redist::TransferV2* t = &transfer;
      if (!region.empty()) {
        restricted = transfer;
        if (!restricted.restrict_to(region)) continue;
        t = &restricted;
      }
      const auto sit =
          src_owned.try_emplace(t->src, from.owned_index_runs(t->src)).first;
      const auto dit =
          dst_owned.try_emplace(t->dst, to.owned_index_runs(t->dst)).first;
      slot.programs.push_back(
          redist::compile_transfer(*t, sit->second, dit->second));
    }
    slot.payload_pool.resize(slot.programs.size());
    // Specialize each compiled program into a pack/unpack kernel unless
    // the A/B toggle keeps the interpreter (the kernels' differential
    // oracle) in charge. Installed once per compile; an evicted slot
    // re-installs on recompilation, so specialized_kernels counts both.
    if (!options_.interpret_kernels) {
      slot.kernels.reserve(slot.programs.size());
      for (const auto& tp : slot.programs)
        slot.kernels.push_back(redist::specialize(tp));
      backend_->account_specialization(slot.kernels.size(), 0);
    }
    slot.compiled = true;
    // The compiled tables are memory like any copy: charge them against
    // the budget and fall back to evicting *other* plan slots when the
    // arrays alone no longer leave room.
    slot.plan_bytes = plan_slot_bytes(slot);
    bytes_in_use_ += slot.plan_bytes;
    if (options_.memory_limit != 0 && bytes_in_use_ > options_.memory_limit)
      evict_plan_slots(plan_slot);
    report_.peak_bytes = std::max(report_.peak_bytes, bytes_in_use_);
    return slot;
  }

  /// The symbolic plan family serving a plan slot (codegen-assigned; -1
  /// when the slot's layout pair does not abstract).
  [[nodiscard]] int family_of_slot(int plan_slot) const {
    if (code_ == nullptr ||
        plan_slot >= static_cast<int>(code_->plan_families.size()))
      return -1;
    return code_->plan_families[static_cast<std::size_t>(plan_slot)];
  }

  /// Two-level plan-cache lookup for a compiling plan slot: the family's
  /// SymbolicPlan (compiled lazily on first use; its descriptor is charged
  /// once per machine and never dropped), then the bound (N, P) instance
  /// for the slot's shapes. One hit-or-miss is accounted per call — the
  /// producing site — so the counters are backend- and toggle-invariant.
  /// The instance's run sets are charged against the memory limit once
  /// however many slots share them (refcounted; see release_instance).
  std::shared_ptr<const redist::PlanInstance> acquire_instance(
      int family, const ConcreteLayout& from, const ConcreteLayout& to) {
    auto& sym = families_[static_cast<std::size_t>(family)];
    if (sym == nullptr) {
      auto sym_from = mapping::SymbolicLayout::abstract(from);
      auto sym_to = mapping::SymbolicLayout::abstract(to);
      HPFC_ASSERT_MSG(sym_from.has_value() && sym_to.has_value(),
                      "codegen assigned a family to an unabstractable pair");
      sym = std::make_unique<redist::SymbolicPlan>(std::move(*sym_from),
                                                   std::move(*sym_to));
      bytes_in_use_ += sym->footprint_bytes();
    }
    const auto key = redist::SymbolicPlan::key(
        from.array_shape(), from.proc_shape(), to.proc_shape());
    auto instance = sym->find(key);
    const bool hit = instance != nullptr;
    if (!hit)
      instance =
          sym->instantiate(from.array_shape(), from.proc_shape(),
                           to.proc_shape());
    backend_->account_plan_cache(hit ? 1 : 0, hit ? 0 : 1, hit ? 0 : 1);
    InstanceCharge& charge = instance_charges_[instance.get()];
    if (charge.refs++ == 0) {
      charge.family = family;
      charge.key = key;
      bytes_in_use_ += instance->bytes;
    }
    return instance;
  }

  /// Releases one plan slot's reference on a shared instance. The last
  /// release un-charges the instance and drops it from its family's cache
  /// so its memory is actually reclaimable; a later compile at the same
  /// shapes re-instantiates (and re-counts a miss). Slots evicted while
  /// other referencing slots live leave the instance bound — their
  /// recompile is a cache hit.
  void release_instance(
      const std::shared_ptr<const redist::PlanInstance>& instance) {
    if (instance == nullptr) return;
    const auto it = instance_charges_.find(instance.get());
    HPFC_ASSERT_MSG(it != instance_charges_.end(),
                    "released an instance that was never charged");
    if (--it->second.refs == 0) {
      bytes_in_use_ -= instance->bytes;
      families_[static_cast<std::size_t>(it->second.family)]->drop(
          it->second.key);
      instance_charges_.erase(it);
    }
  }

  // ---- fused copy groups -------------------------------------------------

  /// Records a group-member Copy while its vertex's guard code runs: the
  /// endpoint storage is allocated (and pinned against eviction) and the
  /// transfer program compiled, but the data movement is deferred so all
  /// the copies the vertex fires share one exchange superstep.
  void defer_copy(const codegen::Op& op) {
    // Defensive: groups never interleave (one vertex per CFG node), but a
    // group change mid-list must still flush the previous round first.
    if (pending_group_ >= 0 && pending_group_ != op.copy_group)
      flush_pending();
    pending_group_ = op.copy_group;
    pending_.push_back({op.array, op.src_version, op.version, op.plan_slot});
    allocate(op.array, op.src_version);
    allocate(op.array, op.version);
    (void)transfer_plan(op.array, op.src_version, op.version, op.region,
                        op.plan_slot);
  }

  /// Runs the pending vertex's fused communication round, then the frees
  /// held while the round was open.
  void flush_pending() {
    if (pending_group_ < 0) return;
    if (!pending_.empty()) run_fused();
    pending_.clear();
    pending_group_ = -1;
    for (const auto& [a, v] : deferred_frees_) deallocate(a, v);
    deferred_frees_.clear();
  }

  /// The cached fused round for the pending member set. Guards decide at
  /// runtime which copies fire, so a group may flush with different member
  /// subsets on different visits; each distinct plan-slot sequence gets
  /// its own framing + pools (steady-state loops always hit the cache).
  FusedSlot& fused_slot() {
    key_scratch_.clear();
    for (const PendingCopy& m : pending_) key_scratch_.push_back(m.plan_slot);
    const auto [it, inserted] = fused_slots_.try_emplace(key_scratch_);
    FusedSlot& slot = it->second;
    if (!inserted) return slot;
    slot.members = pending_;
    slot.programs.reserve(pending_.size());
    slot.endpoints.reserve(pending_.size());
    std::vector<std::span<const redist::SegmentProgram>> spans;
    spans.reserve(pending_.size());
    slot.kernels.reserve(pending_.size());
    for (const PendingCopy& m : pending_) {
      const PlanSlot& plan = plan_slots_[static_cast<std::size_t>(m.plan_slot)];
      const auto& programs = plan.programs;
      slot.programs.push_back(&programs);
      slot.kernels.push_back(&plan.kernels);
      spans.emplace_back(programs);
      slot.endpoints.push_back(
          {&storage_[static_cast<std::size_t>(m.array)]
                    [static_cast<std::size_t>(m.src)],
           &storage_[static_cast<std::size_t>(m.array)]
                    [static_cast<std::size_t>(m.dst)]});
    }
    slot.exchange = redist::build_fused_exchange(
        backend_->ranks(), spans, options_.force_message_path);
    slot.payload_pool.resize(slot.exchange.messages.size());
    return slot;
  }

  /// The fused analogue of copy(): one pack step over combined messages,
  /// ONE exchange for the whole member set, one unpack step by frame. The
  /// local fast path and force_message_path behave per member program
  /// exactly as in the unfused path, so every data-volume counter
  /// (elements, bytes, segments, local copies) is byte-identical to
  /// running the members one superstep each.
  void run_fused() {
    FusedSlot& slot = fused_slot();
    const redist::FusedExchange& fx = slot.exchange;
    const auto member_program =
        [&slot](int member, int program) -> const redist::SegmentProgram& {
      const auto& programs = *slot.programs[static_cast<std::size_t>(member)];
      return programs[static_cast<std::size_t>(program)];
    };
    // nullptr when the member's plan slot carries no kernels (the
    // interpret_kernels toggle): the caller falls back to the walker.
    const auto member_kernel =
        [&slot](int member, int program) -> const redist::Kernel* {
      const auto& kernels = *slot.kernels[static_cast<std::size_t>(member)];
      if (kernels.empty()) return nullptr;
      return &kernels[static_cast<std::size_t>(program)];
    };

    copy_superstep(
        slot.payload_pool, slot.mailbox_pool,
        [&](int r, std::vector<net::Message>& outbox, CopyTally& tally) {
          for (const redist::FusedLocal& u :
               fx.local_by_rank[static_cast<std::size_t>(r)]) {
            const redist::SegmentProgram& tp =
                member_program(u.member, u.program);
            const auto& [from, to] =
                slot.endpoints[static_cast<std::size_t>(u.member)];
            if (const redist::Kernel* k = member_kernel(u.member, u.program)) {
              k->copy(from->locals[static_cast<std::size_t>(r)],
                      to->locals[static_cast<std::size_t>(r)]);
              ++tally.specialized;
            } else {
              redist::copy_local(tp, from->locals[static_cast<std::size_t>(r)],
                                 to->locals[static_cast<std::size_t>(r)]);
            }
            tally_local(tally, tp);
          }
          for (const int mi : fx.by_src[static_cast<std::size_t>(r)]) {
            const redist::FusedMessage& fm =
                fx.messages[static_cast<std::size_t>(mi)];
            net::Message msg;
            msg.src = fm.src;
            msg.dst = fm.dst;
            msg.tag = mi;
            msg.segments = fm.segments;
            msg.payload =
                std::move(slot.payload_pool[static_cast<std::size_t>(mi)]);
            msg.payload.resize(static_cast<std::size_t>(fm.elements));
            for (const redist::FusedFrame& fr : fm.frames) {
              const auto& [from, to] =
                  slot.endpoints[static_cast<std::size_t>(fr.member)];
              const std::span<double> window(
                  msg.payload.data() + fr.offset,
                  static_cast<std::size_t>(fr.len));
              if (const redist::Kernel* k =
                      member_kernel(fr.member, fr.program)) {
                k->pack(from->locals[static_cast<std::size_t>(r)], window);
                ++tally.specialized;
              } else {
                redist::pack_into(member_program(fr.member, fr.program),
                                  from->locals[static_cast<std::size_t>(r)],
                                  window);
              }
            }
            tally.packed_bytes += msg.bytes();
            outbox.push_back(std::move(msg));
          }
        },
        [&](int r, const net::Message& msg) {
          const redist::FusedMessage& fm =
              fx.messages[static_cast<std::size_t>(msg.tag)];
          for (const redist::FusedFrame& fr : fm.frames) {
            const auto& [from, to] =
                slot.endpoints[static_cast<std::size_t>(fr.member)];
            const std::span<const double> window(
                msg.payload.data() + fr.offset,
                static_cast<std::size_t>(fr.len));
            if (const redist::Kernel* k = member_kernel(fr.member, fr.program))
              k->unpack(window, to->locals[static_cast<std::size_t>(r)]);
            else
              redist::unpack(member_program(fr.member, fr.program), window,
                             to->locals[static_cast<std::size_t>(r)]);
          }
        });
    for (const auto& [from, to] : slot.endpoints) to->dirty = true;
    report_.copies_performed += static_cast<int>(slot.members.size());
    if (slot.members.size() >= 2) backend_->account_fused(slot.members.size());
  }

  // ---- crash-consistent snapshots ---------------------------------------

  /// Counts one remap boundary and snapshots on the configured cadence.
  void maybe_snapshot() {
    if (snapshot_writer_ == nullptr) return;
    ++boundary_counter_;
    if (boundary_counter_ % std::max(1, options_.snapshot_every) != 0) return;
    take_snapshot();
  }

  /// Appends one delta epoch for the current store and seals it. The
  /// view borrows the live storage: every (array, version) slot with its
  /// flags, dirty hint, per-rank locals, and owned-run geometry.
  void take_snapshot() {
    if (snapshot_writer_ == nullptr) return;
    persist::StoreView view;
    view.status = &status_;
    view.saved = &saved_;
    view.write_counter = write_counter_;
    for (const ArrayId a : program_.mapped_arrays()) {
      auto& versions = storage_[static_cast<std::size_t>(a)];
      for (std::size_t v = 0; v < versions.size(); ++v) {
        VersionStorage& vs = versions[v];
        persist::VersionView vv;
        vv.array = a;
        vv.version = static_cast<int>(v);
        vv.allocated = vs.allocated;
        vv.live = vs.live;
        vv.dirty = vs.dirty;
        if (vs.allocated) {
          vv.locals = &vs.locals;
          const OwnershipProgram& own = ownership(a, static_cast<int>(v));
          vv.runs.reserve(own.per_rank.size());
          for (const RankOwnership& ro : own.per_rank)
            vv.runs.push_back(&ro.runs);
        }
        view.versions.push_back(std::move(vv));
        vs.dirty = false;
      }
    }
    snapshot_writer_->snapshot(view);
  }

  /// Lazily compiles and caches the ownership program of (array, version):
  /// the bulk-strided form of every rank's owned set plus its sending
  /// role, shared by all per-element runtime loops over that version.
  const OwnershipProgram& ownership(ArrayId a, int version) const {
    auto& cached = ownership_[static_cast<std::size_t>(a)]
                             [static_cast<std::size_t>(version)];
    if (cached) return *cached;
    const ConcreteLayout& lay = layout(a, version);
    OwnershipProgram prog;
    prog.per_rank.resize(static_cast<std::size_t>(lay.ranks()));
    for (int r = 0; r < lay.ranks(); ++r) {
      RankOwnership& ro = prog.per_rank[static_cast<std::size_t>(r)];
      lay.for_each_owned_run(
          r, [&](const mapping::OwnedRun& run) { ro.runs.push_back(run); });
      if (lay.array_shape().rank() > 0) {
        // The sending set is full-or-empty per rank: for_sending only
        // excludes ranks sitting on a non-zero replicated coordinate.
        const auto send = lay.owned_index_runs(r, /*for_sending=*/true);
        bool excluded = send.empty();
        for (const auto& s : send) excluded = excluded || s.empty();
        ro.sends = !excluded;
      }
    }
    cached.emplace(std::move(prog));
    return *cached;
  }

  // ---- reference semantics -------------------------------------------

  void execute_ref(int node, const ir::RefStmt& ref) {
    for (const ArrayId a : ref.reads) touch_read(node, a);
    for (const ArrayId a : ref.writes) touch_write(node, a);
    for (const ArrayId a : ref.defines) touch_write(node, a);
  }

  int ref_version(int node, ArrayId a) const {
    const auto& map = analysis_.ref_versions[static_cast<std::size_t>(node)];
    const auto it = map.find(a);
    HPFC_ASSERT_MSG(it != map.end(), "reference without a resolved version");
    return it->second;
  }

  void touch_read(int node, ArrayId a) {
    if (!program_.array(a).has_mapping) return;
    ++report_.reads;
    if (!parallel()) {
      const auto& values = canonical_[static_cast<std::size_t>(a)];
      for (std::size_t i = 0; i < values.size(); ++i)
        report_.signature +=
            static_cast<std::uint64_t>(values[i]) *
            weight(static_cast<std::int64_t>(i));
      return;
    }
    const int version = ref_version(node, a);
    HPFC_ASSERT_MSG(status_[static_cast<std::size_t>(a)] == version,
                    "runtime status disagrees with the static version");
    allocate(a, version);
    auto& vs =
        storage_[static_cast<std::size_t>(a)][static_cast<std::size_t>(version)];
    vs.live = true;
    const ConcreteLayout& lay = layout(a, version);
    const OwnershipProgram& own = ownership(a, version);
    // Each rank folds its owned elements into a private partial; the
    // wrapping uint64 sum is order-independent, so reducing the partials
    // afterwards reproduces the sequential signature exactly.
    std::fill(partials_.begin(), partials_.end(), 0);
    backend_->step([&](int r) {
      if (r >= lay.ranks()) return;
      const RankOwnership& ro = own.per_rank[static_cast<std::size_t>(r)];
      if (!ro.sends) return;  // primary owners only: replicas count once
      const auto& local = vs.locals[static_cast<std::size_t>(r)];
      std::uint64_t partial = 0;
      for (const mapping::OwnedRun& run : ro.runs) {
        const double* vals = local.data() + run.local_base;
        Index global = run.global_base;
        for (mapping::Extent j = 0; j < run.len;
             ++j, global += run.global_stride)
          partial += static_cast<std::uint64_t>(vals[j]) * weight(global);
      }
      partials_[static_cast<std::size_t>(r)] = partial;
    });
    for (const std::uint64_t partial : partials_) report_.signature += partial;
  }

  void touch_write(int node, ArrayId a) {
    if (!program_.array(a).has_mapping) return;
    ++report_.writes;
    const std::uint64_t counter = ++write_counter_;
    auto& values = canonical_[static_cast<std::size_t>(a)];
    if (!parallel()) {
      for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = stamped(counter, static_cast<std::int64_t>(i));
      return;
    }

    const int version = ref_version(node, a);
    HPFC_ASSERT_MSG(status_[static_cast<std::size_t>(a)] == version,
                    "runtime status disagrees with the static version");
    allocate(a, version);
    auto& vs =
        storage_[static_cast<std::size_t>(a)][static_cast<std::size_t>(version)];
    vs.live = true;
    const ConcreteLayout& lay = layout(a, version);
    const OwnershipProgram& own = ownership(a, version);
    // One superstep stamps both the canonical values (disjoint linear
    // slices, one per rank) and each rank's own local piece.
    backend_->step([&](int r) {
      const auto [begin, end] = rank_slice(values.size(), r);
      for (std::size_t i = begin; i < end; ++i)
        values[i] = stamped(counter, static_cast<std::int64_t>(i));
      if (r >= lay.ranks()) return;
      auto& local = vs.locals[static_cast<std::size_t>(r)];
      for (const mapping::OwnedRun& run :
           own.per_rank[static_cast<std::size_t>(r)].runs) {
        double* vals = local.data() + run.local_base;
        Index global = run.global_base;
        for (mapping::Extent j = 0; j < run.len;
             ++j, global += run.global_stride)
          vals[j] = stamped(counter, global);
      }
    });
    vs.dirty = true;
  }

  /// The contiguous slice of [0, n) that rank r stamps when shared
  /// canonical values are updated cooperatively.
  [[nodiscard]] std::pair<std::size_t, std::size_t> rank_slice(
      std::size_t n, int r) const {
    const auto ranks = static_cast<std::size_t>(backend_->ranks());
    const auto rank = static_cast<std::size_t>(r);
    return {n * rank / ranks, n * (rank + 1) / ranks};
  }

  // ---- validation -------------------------------------------------------

  /// Every live copy other than the current one must hold the canonical
  /// values (the liveness invariant the optimizations rely on).
  void check_liveness_invariant() const {
    for (std::size_t a = 0; a < storage_.size(); ++a) {
      for (std::size_t v = 0; v < storage_[a].size(); ++v) {
        const auto& vs = storage_[a][v];
        if (!vs.live || !vs.allocated) continue;
        if (static_cast<int>(v) == status_[a]) continue;
        verify_copy(static_cast<ArrayId>(a), static_cast<int>(v));
      }
    }
  }

  void verify_copy(ArrayId a, int version) const {
    const auto& vs =
        storage_[static_cast<std::size_t>(a)][static_cast<std::size_t>(version)];
    const ConcreteLayout& lay = layout(a, version);
    const OwnershipProgram& own = ownership(a, version);
    const auto& canonical = canonical_[static_cast<std::size_t>(a)];
    for (int r = 0; r < lay.ranks(); ++r) {
      const auto& local = vs.locals[static_cast<std::size_t>(r)];
      for (const mapping::OwnedRun& run :
           own.per_rank[static_cast<std::size_t>(r)].runs) {
        const double* vals = local.data() + run.local_base;
        Index global = run.global_base;
        for (mapping::Extent j = 0; j < run.len;
             ++j, global += run.global_stride) {
          const double expect = canonical[static_cast<std::size_t>(global)];
          HPFC_ASSERT_MSG(vals[j] == expect,
                          "live copy " + program_.array(a).name + "_" +
                              std::to_string(version) +
                              " diverged from canonical values");
        }
      }
    }
  }

  void check_exported(const ir::CfgNode& exit_node) {
    (void)exit_node;
    // The exit copy-back code has already run via at_node[exit]... it runs
    // before this check in run() because Exit executes node ops first.
    for (const ArrayId a : program_.mapped_arrays()) {
      const auto& decl = program_.array(a);
      if (!decl.is_dummy || decl.intent == ir::Intent::In) continue;
      const auto& vs = storage_[static_cast<std::size_t>(a)][0];
      if (!vs.allocated) {
        report_.exported_values_ok = false;
        continue;
      }
      const ConcreteLayout& lay = layout(a, 0);
      const OwnershipProgram& own = ownership(a, 0);
      const auto& canonical = canonical_[static_cast<std::size_t>(a)];
      bool ok = true;
      for (int r = 0; r < lay.ranks() && ok; ++r) {
        const auto& local = vs.locals[static_cast<std::size_t>(r)];
        for (const mapping::OwnedRun& run :
             own.per_rank[static_cast<std::size_t>(r)].runs) {
          const double* vals = local.data() + run.local_base;
          Index global = run.global_base;
          for (mapping::Extent j = 0; j < run.len && ok;
               ++j, global += run.global_stride) {
            if (vals[j] != canonical[static_cast<std::size_t>(global)])
              ok = false;
          }
          if (!ok) break;
        }
      }
      if (!ok) report_.exported_values_ok = false;
    }
  }

  const ir::Program& program_;
  const remap::Analysis& analysis_;
  const codegen::RuntimeProgram* code_;
  RunOptions options_;
  std::mt19937 rng_;
  std::unique_ptr<exec::Backend> backend_;
  RunReport report_;

  std::vector<int> status_;
  std::vector<std::vector<VersionStorage>> storage_;
  /// Cached ownership programs per (array, version); lazily built, mutable
  /// because the const validation paths share the cache.
  mutable std::vector<std::vector<std::optional<OwnershipProgram>>> ownership_;
  std::vector<std::vector<double>> canonical_;
  std::vector<int> saved_;
  std::uint64_t write_counter_ = 0;
  std::uint64_t bytes_in_use_ = 0;
  /// Compiled transfer programs + pooled buffers per static copy site
  /// (codegen plan slot).
  std::vector<PlanSlot> plan_slots_;
  /// Level 1 of the two-level plan cache: one lazily compiled SymbolicPlan
  /// per codegen family id (see RuntimeProgram::plan_families). Descriptors
  /// are charged once and never dropped; their (N, P) instances live in
  /// each plan's own cache and are refcounted below.
  std::vector<std::unique_ptr<redist::SymbolicPlan>> families_;
  /// Footprint refcount per live shared instance (keyed by its address —
  /// instances are uniquely owned by their family cache while bound): the
  /// instance's bytes are charged on 0 -> 1 and released — and the
  /// instance dropped from its family — on the last release.
  struct InstanceCharge {
    int refs = 0;
    int family = -1;
    redist::SymbolicPlan::InstanceKey key;
  };
  std::map<const void*, InstanceCharge> instance_charges_;
  /// Copy-group deferral state: the open round's id and members, the
  /// frees held until its flush, and the cached fused rounds keyed by
  /// fired plan-slot sequence (key_scratch_ avoids a per-flush rebuild
  /// allocation on cache hits).
  int pending_group_ = -1;
  std::vector<PendingCopy> pending_;
  std::vector<std::pair<ArrayId, int>> deferred_frees_;
  std::map<std::vector<int>, FusedSlot> fused_slots_;
  std::vector<int> key_scratch_;
  /// Pre-sized per-rank scratch (one slot per rank, reset per use) so the
  /// hot supersteps allocate nothing.
  std::vector<std::uint64_t> partials_;
  std::vector<CopyTally> copy_tallies_;
  /// Crash-consistent snapshotting (nullptr unless
  /// RunOptions::snapshot_dir is set on a parallel run).
  std::unique_ptr<persist::SnapshotWriter> snapshot_writer_;
  int boundary_counter_ = 0;
};

}  // namespace

std::string RunReport::summary() const {
  std::ostringstream os;
  os << copies_performed << " copies (" << elements_copied << " elems), "
     << skipped_already_mapped << " already-mapped, " << skipped_live_copy
     << " live-reuse, " << local_fastpath_copies << " local-fastpath, "
     << packed_bytes << " packed bytes, " << net.summary();
  if (!backend.empty())
    os << " [" << backend << " x" << threads << ", " << exec_ms
       << " ms wall (pack " << pack_ms << " / exchange " << exchange_ms
       << " / unpack " << unpack_ms << ")]";
  return os.str();
}

RunReport run_parallel(const ir::Program& program,
                       const remap::Analysis& analysis,
                       const codegen::RuntimeProgram& code,
                       const RunOptions& options) {
  Machine machine(program, analysis, &code, options);
  return machine.run();
}

RunReport run_oracle(const ir::Program& program,
                     const remap::Analysis& analysis,
                     const RunOptions& options) {
  Machine machine(program, analysis, nullptr, options);
  return machine.run();
}

}  // namespace hpfc::runtime
