// The runtime of §5: executes a compiled routine on the simulated
// distributed-memory machine. Arrays are stored as statically mapped
// versions (one block-cyclic local piece per rank); the generated guard
// code (codegen::RuntimeProgram) manages the per-array status descriptor
// and per-copy live flags; Copy ops run real redistribution communication
// through an exec::Backend (the sequential BSP loop or the thread-per-rank
// engine — both yield identical results, inbox order, and NetStats).
// Copies sharing a codegen copy group (one remapping vertex) are deferred
// and flushed as ONE fused exchange superstep with per-(src,dst) combined
// messages (see redist/fused.hpp), unless RunOptions::unfuse_copy_groups
// restores the historical one-superstep-per-copy behaviour.
//
// Execution is differential-testable: a sequential oracle executes the
// same control-flow path against one canonical value array per abstract
// array; read checksums (exact integer arithmetic, order-independent) must
// be identical. Writes stamp deterministic values derived from a write
// counter shared by construction between the two executions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "codegen/runtime_ops.hpp"
#include "exec/backend.hpp"
#include "net/network.hpp"
#include "remap/build.hpp"

namespace hpfc::runtime {

struct RunOptions {
  /// Machine size; 0 = max processor-arrangement size used by the program.
  int ranks = 0;
  net::CostModel cost{};
  /// Seed for branch decisions (if conditions). The same seed makes the
  /// oracle and the parallel run follow the same path.
  unsigned seed = 1;
  /// Total distributed-memory budget in bytes; 0 = unlimited. When an
  /// allocation would exceed it, the runtime evicts live non-current
  /// copies (they are regenerated later with communication, §5.2).
  std::uint64_t memory_limit = 0;
  /// Validate, after every step, that every live non-current copy holds
  /// the canonical values (the liveness invariant). Slow; for tests.
  bool paranoid = false;
  /// How rank work executes on the host: the sequential BSP loop or the
  /// thread-per-rank engine. Both produce identical results and NetStats;
  /// only exec_ms differs. The oracle always runs sequentially.
  exec::BackendKind backend = exec::BackendKind::Seq;
  /// Worker threads for the thread backend (clamped to [1, ranks];
  /// 0 = min(ranks, hardware threads)). Ignored by the seq backend.
  int threads = 0;
  /// Disable the src == dst local-copy fast path and materialize every
  /// transfer as a self-message through the exchange, as the runtime did
  /// historically. Results and NetStats are identical either way (the
  /// differential tests assert it); only packed_bytes and
  /// local_fastpath_copies move. For tests and A/B measurements.
  bool force_message_path = false;
  /// Disable cross-array message aggregation and run every Copy op as its
  /// own exchange superstep, as the runtime did historically. Results and
  /// the data-volume counters (elements, bytes, segments, checksums) are
  /// identical either way; messages, supersteps, fused_copies and
  /// sim_time move, and so may the memory accounting (peak_bytes,
  /// evictions): a fused vertex holds — and pins against eviction — all
  /// its members' endpoints until the shared flush. For tests and A/B
  /// measurements.
  bool unfuse_copy_groups = false;
  /// Disable the specialized pack/unpack kernels and execute every
  /// transfer through the interpreted SegmentProgram walker, as the
  /// runtime did historically. Results and every NetStats counter except
  /// specialized_kernels / specialized_dispatches are byte-identical
  /// either way (the differential tests and `check_bench_regression
  /// --identical` assert it); only exec_ms moves. The interpreter is the
  /// differential oracle of the kernel layer — see docs/kernels.md. For
  /// tests and A/B measurements.
  bool interpret_kernels = false;
  /// Bypass the symbolic plan cache and build every plan slot's
  /// redistribution plan directly from the concrete layouts
  /// (redist::build_runs), as the runtime did historically. Plans are
  /// byte-identical either way — both paths intersect the same ownership
  /// run sets — so results and every NetStats counter except
  /// plan_cache_hits / plan_cache_misses / symbolic_instantiations are
  /// unchanged (those three stay 0). The concrete builder is the
  /// differential oracle of the symbolic plan layer — see
  /// tests/test_symbolic.cpp. For tests and A/B measurements.
  bool concrete_plans = false;
  /// Run the superstep's pack and unpack phases as plain serial loops on
  /// the controller thread and ship proc-backend frames through the
  /// historical encode-copy path, instead of routing them through
  /// Backend::step (per-rank concurrency) and the scatter-gather wire
  /// path. Results, NetStats, inbox order, and checksums are identical
  /// either way (the differential tests and `check_bench_regression
  /// --identical` assert it); only exec_ms and the pack_ms / exchange_ms /
  /// unpack_ms phase timers move. The phased leg is the pipeline's
  /// differential oracle. For tests and A/B measurements.
  bool no_pipeline = false;
  /// Proc backend only: route the socket mesh over TCP loopback
  /// connections instead of AF_UNIX socketpairs (same frames, real
  /// network stack). An environment A/B knob.
  bool proc_tcp = false;
  /// Proc backend only: deadline for every socket operation in
  /// milliseconds. Bounds how long a dead or wedged worker can stall an
  /// exchange before the run fails with a diagnostic instead of hanging.
  int proc_timeout_ms = 10000;
  /// Directory for crash-consistent snapshots of the versioned array
  /// store (persist::SnapshotWriter). Empty = snapshots disabled. The
  /// run starts a fresh journal, truncating the directory's previous
  /// one. The oracle never snapshots.
  std::string snapshot_dir;
  /// Snapshot every Nth remap boundary (a CFG node whose guard code
  /// ran). The final store is always sealed at exit regardless.
  /// Ignored without snapshot_dir.
  int snapshot_every = 1;

  /// Sets a boolean toggle by registry name ("force-message-path" /
  /// "force_message_path" — both spellings resolve; see
  /// runtime/toggles.hpp). Returns false when no such toggle exists.
  bool set(std::string_view toggle, bool value = true);
};

struct RunReport {
  std::uint64_t signature = 0;  ///< order-independent read checksum
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Remapping copies actually performed (communication happened).
  int copies_performed = 0;
  std::uint64_t elements_copied = 0;
  /// Remap guards that found the array already mapped as required
  /// (the paper's "inexpensive check of its status").
  int skipped_already_mapped = 0;
  /// Remap guards that found a live copy and reused it without
  /// communication (the live-copy optimization paying off).
  int skipped_live_copy = 0;
  int allocations = 0;
  int frees = 0;
  int evictions = 0;
  /// Compiled plan slots (segment programs + specialized kernels) dropped
  /// under memory pressure after storage eviction alone could not satisfy
  /// the limit; each one is re-compiled — and re-specialized — on its
  /// next use.
  int plan_evictions = 0;
  std::uint64_t peak_bytes = 0;
  /// Payload bytes actually materialized into message buffers while
  /// packing (remote transfers only when the local fast path is active;
  /// every transfer under RunOptions::force_message_path).
  std::uint64_t packed_bytes = 0;
  /// src == dst transfers executed as direct strided local copies,
  /// bypassing message materialization entirely.
  std::uint64_t local_fastpath_copies = 0;
  /// Exported dummy arguments held the canonical values at exit.
  bool exported_values_ok = true;
  net::NetStats net;

  // Machine configuration and host timing, filled by every run: the
  // resolved rank count, the execution backend that ran the rank work,
  // the host worker threads it used, and the wall-clock time of the run
  // itself. Program compilation happens before the timed window, but the
  // lazy per-plan-slot transfer compilation on each site's first Copy is
  // part of the run and is included.
  int ranks = 0;
  std::string backend;
  int threads = 0;
  double exec_ms = 0.0;

  // Superstep phase timers: wall-clock accumulated over every exchange
  // superstep's pack / exchange / unpack window (run_benches' timeout
  // diagnostics and the pipeline A/B read them). They sum to less than
  // exec_ms — guard evaluation, plan compilation, and local fast-path
  // copies run outside the three windows.
  double pack_ms = 0.0;
  double exchange_ms = 0.0;
  double unpack_ms = 0.0;

  // Real-socket traffic (exec::WireStats): zero unless the proc backend
  // ran. Deliberately outside NetStats — NetStats stay byte-identical
  // across backends, while wire traffic only exists when payloads
  // physically cross a process boundary.
  std::uint64_t wire_bytes = 0;
  std::uint64_t wire_msgs = 0;
  std::uint64_t proc_spawns = 0;

  // Crash-consistent snapshot work (persist::SnapshotWriter; all zero
  // unless RunOptions::snapshot_dir is set). Bytes and runs count the
  // journal deltas and are byte-identical across execution backends —
  // snapshot boundaries are program-structural and the store contents
  // are deterministic — while snapshot_ms is host wall-clock. The
  // runtime never restores mid-run: restore_ms is filled by embedders
  // (benches, tools) that time persist::restore against this run.
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t snapshot_runs_written = 0;
  double snapshot_ms = 0.0;
  double restore_ms = 0.0;

  [[nodiscard]] std::string summary() const;
};

/// Runs the compiled routine on the simulated machine.
RunReport run_parallel(const ir::Program& program,
                       const remap::Analysis& analysis,
                       const codegen::RuntimeProgram& code,
                       const RunOptions& options = {});

/// Runs the sequential reference semantics (no distribution, no copies).
RunReport run_oracle(const ir::Program& program,
                     const remap::Analysis& analysis,
                     const RunOptions& options = {});

}  // namespace hpfc::runtime
