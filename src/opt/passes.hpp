// Dataflow optimizations on the remapping graph (paper §4, Appendices C-D)
// plus the loop-invariant remapping motion of §4.3 (Figures 16-17).
//
// All passes operate on the small G_R, not the CFG — the paper's point:
// the remapping graph abstracts exactly the mapping/liveness information
// needed, and is much smaller than the control-flow graph.
#pragma once

#include "ir/program.hpp"
#include "remap/build.hpp"

namespace hpfc::opt {

struct OptReport {
  /// (vertex, array) remappings whose U was N and which were removed.
  int removed_remappings = 0;
  /// Vertices left with no remapped array at all after removal.
  int vertices_deactivated = 0;
  /// Remap statements hoisted out of loops (Figure 16 -> 17).
  int hoisted_remaps = 0;
  /// Result of the Theorem 1 validation, when requested.
  bool theorem1_holds = true;
};

/// Appendix C: removes every remapping whose leaving copy is never used
/// (U = N) — also applying the Figure 22 import floors to the entry labels
/// of dummy arguments first — then recomputes all reaching sets as the
/// transitive closure over removed vertices.
void remove_useless_remappings(remap::Analysis& analysis, OptReport& report);

/// Independent check of Theorem 1 on the optimized graph: a version `a`
/// is in R_A(v) iff some G_R path reaches v from a vertex leaving `a`
/// with every intermediate vertex removed for A. Returns true when the
/// computed sets are exactly the path-derived ones.
bool validate_theorem1(const remap::Analysis& analysis);

/// Appendix D: fills the maybe-live sets M_A(v): copies that may still be
/// used later along paths where the array is only read. The runtime keeps
/// only copies in M (everything else is freed at the vertex), which is what
/// turns a later remap back to a kept copy into a no-op.
void compute_maybe_live(remap::Analysis& analysis);

/// Figures 16-17: moves a remapping that ends a loop body out of the loop
/// when the remapped arrays are not referenced before the body's first
/// remapping of them (so on the back-edge path the moved statement was
/// useless). Returns the number of statements moved. Must run *before*
/// analyze() — it rewrites the AST.
int hoist_loop_invariant_remaps(ir::Program& program);

}  // namespace hpfc::opt
