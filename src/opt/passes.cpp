#include "opt/passes.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "support/check.hpp"

namespace hpfc::opt {

namespace {

using ir::ArrayId;
using remap::ArrayLabel;
using remap::RemapGraph;
using remap::RemapVertex;
using remap::VertexKind;

bool kept(const ArrayLabel& label) {
  return !label.removed && !label.leaving.empty();
}

bool insert_sorted(std::vector<int>& set, int value) {
  const auto it = std::lower_bound(set.begin(), set.end(), value);
  if (it != set.end() && *it == value) return false;
  set.insert(it, value);
  return true;
}

bool merge_sorted(std::vector<int>& into, const std::vector<int>& from) {
  bool changed = false;
  for (const int v : from) changed |= insert_sorted(into, v);
  return changed;
}

bool edge_has(const remap::RemapEdge& edge, ArrayId a) {
  return std::find(edge.arrays.begin(), edge.arrays.end(), a) !=
         edge.arrays.end();
}

}  // namespace

void remove_useless_remappings(remap::Analysis& analysis, OptReport& report) {
  RemapGraph& graph = analysis.graph;

  // Figure 22 import floors: an imported dummy argument's initial copy
  // carries caller-defined values, so its entry label cannot drop to N
  // (the first remapping must still transfer the imported data).
  {
    RemapVertex& vc = graph.vertex(graph.vc());
    for (auto& [a, label] : vc.arrays) {
      (void)a;
      label.use = label.use.merge(ir::Use::full_def());
    }
  }

  // Backward value-liveness fixpoint: value_needed(v, a) holds when the
  // array value arriving at v is read at or after v before being fully
  // redefined on some path. A genuine all-paths full def (D, passes=false)
  // screens downstream need; N and merged-D labels pass the value through,
  // so the need of their successors flows back. Codegen consults the
  // result for the §5.2 dead-transfer skip: without it a D label merged
  // from an {N, D} branch pair would skip a copy whose value the N path
  // still carries into a later consumer (the seed-306 divergence).
  std::map<std::pair<int, ArrayId>, bool> value_needed;
  {
    bool needed_changed = true;
    while (needed_changed) {
      needed_changed = false;
      for (RemapVertex& v : graph.vertices()) {
        for (auto& [a, label] : v.arrays) {
          bool needed = label.use.may_read;
          if (!needed && label.use.passes) {
            for (const int e : graph.out_edges(v.id)) {
              const auto& edge = graph.edges()[static_cast<std::size_t>(e)];
              if (!edge_has(edge, a)) continue;
              const RemapVertex& succ = graph.vertex(edge.to);
              if (succ.arrays.find(a) == succ.arrays.end()) continue;
              if (value_needed[{succ.id, a}]) {
                needed = true;
                break;
              }
            }
          }
          bool& slot = value_needed[{v.id, a}];
          if (needed && !slot) {
            slot = true;
            needed_changed = true;
          }
        }
      }
    }
    for (RemapVertex& v : graph.vertices())
      for (auto& [a, label] : v.arrays)
        label.value_needed = value_needed[{v.id, a}];
  }

  // Phase 1 (Appendix C): delete leaving mappings whose use is N. An
  // *origin* label (empty reaching set: the entry materialization of the
  // array's initial values) is the bottom of every reaching chain, so it
  // survives whenever the value is still live downstream — removing it
  // would orphan every consumer that re-sources through removed vertices
  // (the seed-305 class of bug: entry label N, later call-site copy W).
  for (RemapVertex& v : graph.vertices()) {
    bool active_before = false;
    bool active_after = false;
    for (auto& [a, label] : v.arrays) {
      if (kept(label)) active_before = true;
      if (!label.leaving.empty() && label.use.is_none() && !label.removed &&
          !(label.reaching.empty() && label.value_needed)) {
        label.removed = true;
        ++report.removed_remappings;
      }
      if (kept(label)) active_after = true;
    }
    if (active_before && !active_after &&
        (v.kind == VertexKind::Remap || v.kind == VertexKind::CallPre ||
         v.kind == VertexKind::CallPost)) {
      ++report.vertices_deactivated;
    }
  }

  // Phase 2: recompute reaching sets. A removed vertex no longer produces
  // its leaving copy, so reaching mappings flow through it (transitive
  // closure over unreferenced paths).
  for (RemapVertex& v : graph.vertices())
    for (auto& [a, label] : v.arrays) {
      (void)a;
      label.reaching.clear();
    }

  bool changed = true;
  while (changed) {
    changed = false;
    for (RemapVertex& v : graph.vertices()) {
      for (auto& [a, label] : v.arrays) {
        for (const int e : graph.in_edges(v.id)) {
          const auto& edge = graph.edges()[static_cast<std::size_t>(e)];
          if (!edge_has(edge, a)) continue;
          const RemapVertex& pred = graph.vertex(edge.from);
          const auto it = pred.arrays.find(a);
          if (it == pred.arrays.end()) continue;
          if (kept(it->second)) {
            changed |= merge_sorted(label.reaching, it->second.leaving);
          } else {
            changed |= merge_sorted(label.reaching, it->second.reaching);
          }
        }
      }
    }
  }
}

bool validate_theorem1(const remap::Analysis& analysis) {
  const RemapGraph& graph = analysis.graph;
  for (const RemapVertex& v : graph.vertices()) {
    for (const auto& [a, label] : v.arrays) {
      // Collect the path-derived reaching set by backward DFS through
      // vertices removed for `a`.
      std::vector<int> expected;
      std::set<int> visited;
      std::vector<int> stack = {v.id};
      while (!stack.empty()) {
        const int current = stack.back();
        stack.pop_back();
        for (const int e : graph.in_edges(current)) {
          const auto& edge = graph.edges()[static_cast<std::size_t>(e)];
          if (!edge_has(edge, a)) continue;
          const RemapVertex& pred = graph.vertex(edge.from);
          const auto it = pred.arrays.find(a);
          if (it == pred.arrays.end()) continue;
          if (kept(it->second)) {
            for (const int ver : it->second.leaving)
              insert_sorted(expected, ver);
          } else if (visited.insert(pred.id).second) {
            stack.push_back(pred.id);
          }
        }
      }
      if (expected != label.reaching) return false;
    }
  }
  return true;
}

void compute_maybe_live(remap::Analysis& analysis) {
  RemapGraph& graph = analysis.graph;
  // Initialization: directly useful mappings — the kept leaving copies.
  for (RemapVertex& v : graph.vertices())
    for (auto& [a, label] : v.arrays) {
      (void)a;
      label.maybe_live = kept(label) ? label.leaving : std::vector<int>{};
    }

  // Backward propagation along edges where the leaving copy is not
  // modified (U in {N, R}): other copies' values stay valid through v.
  bool changed = true;
  while (changed) {
    changed = false;
    for (RemapVertex& v : graph.vertices()) {
      for (auto& [a, label] : v.arrays) {
        if (label.use.may_write) continue;
        for (const int e : graph.out_edges(v.id)) {
          const auto& edge = graph.edges()[static_cast<std::size_t>(e)];
          if (!edge_has(edge, a)) continue;
          const RemapVertex& succ = graph.vertex(edge.to);
          const auto it = succ.arrays.find(a);
          if (it == succ.arrays.end()) continue;
          changed |= merge_sorted(label.maybe_live, it->second.maybe_live);
        }
      }
    }
  }
}

namespace {

/// Arrays a remap statement may affect, computed syntactically: for a
/// realign the array itself, for a redistribute every array initially on
/// the template or realigned onto it anywhere in the routine.
std::vector<ArrayId> affected_arrays(const ir::Program& program,
                                     const ir::Stmt& stmt) {
  std::vector<ArrayId> result;
  if (const auto* realign = std::get_if<ir::RealignStmt>(&stmt.node)) {
    result.push_back(realign->array);
    return result;
  }
  const auto* redist = std::get_if<ir::RedistributeStmt>(&stmt.node);
  if (redist == nullptr) return result;
  std::set<ArrayId> set;
  for (std::size_t a = 0; a < program.arrays.size(); ++a)
    if (program.arrays[a].has_mapping &&
        program.arrays[a].template_id == redist->target_template)
      set.insert(static_cast<ArrayId>(a));
  ir::for_each_stmt(program.body, [&](const ir::Stmt& s) {
    if (const auto* r = std::get_if<ir::RealignStmt>(&s.node))
      if (r->target_template == redist->target_template) set.insert(r->array);
  });
  result.assign(set.begin(), set.end());
  return result;
}

bool is_remap(const ir::Stmt& stmt) {
  return std::holds_alternative<ir::RealignStmt>(stmt.node) ||
         std::holds_alternative<ir::RedistributeStmt>(stmt.node);
}

bool ref_touches(const ir::Stmt& stmt, const std::set<ArrayId>& arrays) {
  const auto* ref = std::get_if<ir::RefStmt>(&stmt.node);
  if (ref == nullptr) return false;
  const auto any = [&](const std::vector<ArrayId>& list) {
    return std::any_of(list.begin(), list.end(),
                       [&](ArrayId a) { return arrays.count(a) > 0; });
  };
  return any(ref->reads) || any(ref->writes) || any(ref->defines);
}

/// Attempts the Figure 16 -> 17 motion on one loop; returns the hoisted
/// statement or nullptr.
ir::StmtPtr try_hoist_one(const ir::Program& program, ir::LoopStmt& loop) {
  if (loop.body.empty()) return nullptr;
  ir::Stmt& last = *loop.body.back();
  if (!is_remap(last)) return nullptr;
  const std::vector<ArrayId> affected = affected_arrays(program, last);
  if (affected.empty()) return nullptr;
  const std::set<ArrayId> target(affected.begin(), affected.end());

  // Scan the body prefix: the move is sound when every affected array is
  // remapped again before any reference to it (so along the back edge the
  // moved statement's copy was dead). Coverage may accumulate over several
  // remap statements; references to already re-remapped arrays are fine.
  std::set<ArrayId> remaining = target;
  for (std::size_t i = 0; i + 1 < loop.body.size() && !remaining.empty();
       ++i) {
    const ir::Stmt& s = *loop.body[i];
    if (is_remap(s)) {
      for (const ArrayId a : affected_arrays(program, s)) remaining.erase(a);
      continue;
    }
    if (std::holds_alternative<ir::RefStmt>(s.node)) {
      if (ref_touches(s, remaining)) return nullptr;
      continue;
    }
    // Conservative: any other construct in the prefix blocks the motion.
    return nullptr;
  }
  if (!remaining.empty()) return nullptr;

  ir::StmtPtr hoisted = std::move(loop.body.back());
  loop.body.pop_back();
  return hoisted;
}

int hoist_in_block(const ir::Program& program, ir::Block& block) {
  int count = 0;
  for (std::size_t i = 0; i < block.size(); ++i) {
    ir::Stmt& stmt = *block[i];
    if (auto* loop = std::get_if<ir::LoopStmt>(&stmt.node)) {
      count += hoist_in_block(program, loop->body);
      while (ir::StmtPtr hoisted = try_hoist_one(program, *loop)) {
        block.insert(block.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                     std::move(hoisted));
        ++count;
      }
    } else if (auto* ifs = std::get_if<ir::IfStmt>(&stmt.node)) {
      count += hoist_in_block(program, ifs->then_body);
      count += hoist_in_block(program, ifs->else_body);
    }
  }
  return count;
}

}  // namespace

int hoist_loop_invariant_remaps(ir::Program& program) {
  const int count = hoist_in_block(program, program.body);
  if (count > 0) {
    DiagnosticEngine scratch;
    program.finalize(scratch);  // renumber statements
    HPFC_ASSERT_MSG(!scratch.has_errors(),
                    "hoisting must preserve well-formedness");
  }
  return count;
}

}  // namespace hpfc::opt
