#include "ir/effects.hpp"

#include <sstream>

namespace hpfc::ir {

EffectMap merge(const EffectMap& a, const EffectMap& b) {
  // An array absent from one side has Use::none() on that path; the merge
  // must record that the value passes through unscreened there (a one-sided
  // D must not claim "redefined on every path").
  EffectMap result = a;
  for (const auto& [array, use] : b) {
    auto [it, inserted] = result.try_emplace(array, use.merge(Use::none()));
    if (!inserted) it->second = it->second.merge(use);
  }
  for (auto& [array, use] : result)
    if (b.find(array) == b.end()) use = use.merge(Use::none());
  return result;
}

EffectMap then(const EffectMap& first, const EffectMap& after) {
  EffectMap result = after;
  for (const auto& [array, use] : first) {
    const auto it = result.find(array);
    const Use tail = it == result.end() ? Use::none() : it->second;
    result[array] = use.then(tail);
  }
  return result;
}

std::string to_string(const EffectMap& effects) {
  std::ostringstream os;
  os << "{";
  bool sep = false;
  for (const auto& [array, use] : effects) {
    if (use.is_none()) continue;
    if (sep) os << ", ";
    sep = true;
    os << "a" << array << ":" << use.letter();
  }
  os << "}";
  return os.str();
}

}  // namespace hpfc::ir
