#include "ir/stmt.hpp"

namespace hpfc::ir {

StmtPtr make_stmt(StmtNode node, SourceLoc loc, std::string label) {
  auto stmt = std::make_unique<Stmt>();
  stmt->node = std::move(node);
  stmt->loc = loc;
  stmt->label = std::move(label);
  return stmt;
}

}  // namespace hpfc::ir
