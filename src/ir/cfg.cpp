#include "ir/cfg.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace hpfc::ir {

const char* to_string(CfgKind kind) {
  switch (kind) {
    case CfgKind::Entry: return "entry";
    case CfgKind::Exit: return "exit";
    case CfgKind::Plain: return "stmt";
    case CfgKind::Branch: return "branch";
    case CfgKind::Join: return "join";
    case CfgKind::LoopHead: return "loop-head";
    case CfgKind::LoopLatch: return "loop-latch";
    case CfgKind::CallPre: return "call-pre";
    case CfgKind::Call: return "call";
    case CfgKind::CallPost: return "call-post";
  }
  return "?";
}

const CfgNode& Cfg::node(int id) const {
  HPFC_ASSERT(id >= 0 && id < size());
  return nodes_[static_cast<std::size_t>(id)];
}

int Cfg::add_node(CfgKind kind, const Stmt* stmt) {
  const int id = size();
  nodes_.push_back(CfgNode{id, kind, stmt, {}, {}});
  return id;
}

void Cfg::add_edge(int from, int to) {
  nodes_[static_cast<std::size_t>(from)].succs.push_back(to);
  nodes_[static_cast<std::size_t>(to)].preds.push_back(from);
}

std::pair<int, int> Cfg::build_block(const Block& block) {
  int first = -1;
  int last = -1;
  const auto append = [&](int head, int tail) {
    if (first == -1) first = head;
    if (last != -1) add_edge(last, head);
    last = tail;
  };

  for (const auto& sp : block) {
    const Stmt& stmt = *sp;
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, IfStmt>) {
            const int branch = add_node(CfgKind::Branch, &stmt);
            const int join = add_node(CfgKind::Join, nullptr);
            const auto [tf, tl] = build_block(node.then_body);
            if (tf == -1) {
              add_edge(branch, join);
            } else {
              add_edge(branch, tf);
              add_edge(tl, join);
            }
            const auto [ef, el] = build_block(node.else_body);
            if (ef == -1) {
              add_edge(branch, join);
            } else {
              add_edge(branch, ef);
              add_edge(el, join);
            }
            append(branch, join);
          } else if constexpr (std::is_same_v<T, LoopStmt>) {
            const int head = add_node(CfgKind::LoopHead, &stmt);
            const auto [bf, bl] = build_block(node.body);
            if (bf == -1) {
              // Empty body: the head alone models the (no-op) loop.
              append(head, head);
            } else if (node.may_zero_trip) {
              // head -> body -> head; the loop exits from the head.
              add_edge(head, bf);
              add_edge(bl, head);
              append(head, head);
            } else {
              // Bottom-tested: head -> body -> latch; latch repeats the
              // body or exits, so the body runs at least once.
              const int latch = add_node(CfgKind::LoopLatch, &stmt);
              add_edge(head, bf);
              add_edge(bl, latch);
              add_edge(latch, bf);
              append(head, latch);
            }
          } else if constexpr (std::is_same_v<T, CallStmt>) {
            const int pre = add_node(CfgKind::CallPre, &stmt);
            const int call = add_node(CfgKind::Call, &stmt);
            const int post = add_node(CfgKind::CallPost, &stmt);
            add_edge(pre, call);
            add_edge(call, post);
            append(pre, post);
          } else {
            const int node_id = add_node(CfgKind::Plain, &stmt);
            append(node_id, node_id);
          }
        },
        stmt.node);
  }
  return {first, last};
}

Cfg Cfg::build(const Program& program) {
  Cfg cfg;
  cfg.entry_ = cfg.add_node(CfgKind::Entry, nullptr);
  cfg.exit_ = cfg.add_node(CfgKind::Exit, nullptr);
  const auto [first, last] = cfg.build_block(program.body);
  if (first == -1) {
    cfg.add_edge(cfg.entry_, cfg.exit_);
  } else {
    cfg.add_edge(cfg.entry_, first);
    cfg.add_edge(last, cfg.exit_);
  }
  cfg.compute_rpo();
  return cfg;
}

void Cfg::compute_rpo() {
  std::vector<int> postorder;
  std::vector<char> state(static_cast<std::size_t>(size()), 0);
  // Iterative DFS with an explicit stack of (node, next-successor-index).
  std::vector<std::pair<int, std::size_t>> stack;
  stack.emplace_back(entry_, 0);
  state[static_cast<std::size_t>(entry_)] = 1;
  while (!stack.empty()) {
    auto& [n, i] = stack.back();
    const auto& succs = nodes_[static_cast<std::size_t>(n)].succs;
    if (i < succs.size()) {
      const int next = succs[i++];
      if (state[static_cast<std::size_t>(next)] == 0) {
        state[static_cast<std::size_t>(next)] = 1;
        stack.emplace_back(next, 0);
      }
    } else {
      postorder.push_back(n);
      stack.pop_back();
    }
  }
  rpo_.assign(postorder.rbegin(), postorder.rend());
}

std::string Cfg::to_string(const Program& program) const {
  std::ostringstream os;
  for (const CfgNode& n : nodes_) {
    os << "n" << n.id << " [" << hpfc::ir::to_string(n.kind);
    if (n.stmt != nullptr) {
      os << " s" << n.stmt->id;
      if (!n.stmt->label.empty()) os << " '" << n.stmt->label << "'";
    }
    os << "] ->";
    for (const int s : n.succs) os << " n" << s;
    os << "\n";
  }
  (void)program;
  return os.str();
}

}  // namespace hpfc::ir
