// The paper's conservative use information: how an array copy "might be
// used afterwards" — never referenced (N), fully redefined before any use
// (D), only read (R), or maybe modified (W) (§3.1, Appendix A).
//
// The paper linearizes the qualifiers N < D < R < W. We implement the
// underlying two-boolean lattice instead: (may_read, may_write) with
// N=(0,0), D=(0,1), R=(1,0), W=(1,1); merging across paths is component-wise
// OR and sequential composition follows first-use semantics. This is sound,
// agrees with the paper on its examples, and is strictly more precise on
// {D,R} path merges (documented in DESIGN.md).
//
// Meaning for the remapping machinery:
//   may_read  = the incoming *values* are needed -> the copy must transfer
//               data (N and D copies skip communication entirely).
//   may_write = the new copy may be modified -> the other copies' values
//               become stale (they must not be reused later).
#pragma once

#include <map>
#include <string>

namespace hpfc::ir {

struct Use {
  bool may_read = false;
  bool may_write = false;
  /// Some path to the next remapping point neither reads nor fully
  /// overwrites the incoming value: it flows through to later consumers.
  /// A pure D screens (passes=false), but merge(N, D) keeps passes=true —
  /// the letter alone would claim "fully redefined on every path" and
  /// license skipping a transfer whose value the N path still carries.
  bool passes = true;

  static constexpr Use none() { return {false, false, true}; }       // N
  static constexpr Use full_def() { return {false, true, false}; }   // D
  static constexpr Use read() { return {true, false, true}; }        // R
  static constexpr Use write() { return {true, true, true}; }        // W

  [[nodiscard]] bool is_none() const { return !may_read && !may_write; }

  /// The paper's letter for this qualifier.
  [[nodiscard]] char letter() const {
    if (may_read) return may_write ? 'W' : 'R';
    return may_write ? 'D' : 'N';
  }

  /// Merge over distinct control paths (may-analysis union).
  [[nodiscard]] Use merge(Use other) const {
    return {may_read || other.may_read, may_write || other.may_write,
            passes || other.passes};
  }

  /// Sequential composition: `this` happens first, then `after`.
  /// A full redefinition (D) screens everything behind it: later uses see
  /// the new values, so the incoming values are still not needed. A merged
  /// D that still passes on some path does NOT screen: that path's later
  /// reads see the incoming value.
  [[nodiscard]] Use then(Use after) const {
    if (may_write && !may_read && !passes) return full_def();
    return {may_read || after.may_read, may_write || after.may_write,
            passes && after.passes};
  }

  friend bool operator==(const Use&, const Use&) = default;
};

/// Per-array effect summary at a program point. Arrays absent from the map
/// have Use::none().
using EffectMap = std::map<int, Use>;  // key: ArrayId

/// Path-merge of two effect maps.
EffectMap merge(const EffectMap& a, const EffectMap& b);

/// Sequential composition: `first` happens, then `after`.
EffectMap then(const EffectMap& first, const EffectMap& after);

std::string to_string(const EffectMap& effects);

}  // namespace hpfc::ir
