// The HPF-lite structured AST. Computation is abstracted to its array
// effects (which arrays a statement reads / writes / fully defines) — all
// the remapping analyses need, per the paper. Mapping directives and calls
// are first-class statements.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "ir/symbols.hpp"
#include "mapping/align.hpp"
#include "mapping/dist.hpp"
#include "support/diagnostics.hpp"

namespace hpfc::ir {

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

/// A computation statement abstracted to its effects: `... A ...`.
/// `defines` lists arrays fully redefined before any use (effect D).
struct RefStmt {
  std::vector<ArrayId> reads;
  std::vector<ArrayId> writes;   ///< maybe-modified (effect W)
  std::vector<ArrayId> defines;  ///< fully redefined (effect D)
};

/// REALIGN array WITH target(...). After sema the target is a template and
/// the alignment maps the array directly onto it.
struct RealignStmt {
  ArrayId array = -1;
  TemplateId target_template = -1;
  mapping::Alignment align;
};

/// REDISTRIBUTE of a template (or of a directly distributed array, resolved
/// to its implicit template by sema).
struct RedistributeStmt {
  TemplateId target_template = -1;
  mapping::Distribution dist;
};

struct IfStmt {
  std::vector<ArrayId> cond_reads;  ///< arrays read by the condition
  Block then_body;
  Block else_body;
};

struct LoopStmt {
  Block body;
  /// May the loop execute zero times? (HPF DO loops may — the paper's
  /// Figure 11 has G_R edges that exist only because of this.)
  bool may_zero_trip = true;
  /// Trip count used when the program is *executed* on the simulated
  /// machine (analyses never look at it).
  mapping::Extent trip_count = 1;
};

struct CallStmt {
  std::string callee;           ///< interface name
  InterfaceId interface_id = -1;  ///< resolved by sema
  std::vector<ArrayId> args;
};

/// The prototype compiler's kill directive (§4.3): asserts the array's
/// values are dead at this point, so remapping it needs no communication.
struct KillStmt {
  ArrayId array = -1;
};

/// A rectangular sub-region of an array: one [lo, hi) interval per dim.
using Region = std::vector<std::pair<mapping::Extent, mapping::Extent>>;

/// The §4.3 array-region refinement of kill: asserts that only `region`
/// of the array is live here. Elements outside it are dead and read as
/// zero from this point on (a partial kill with a deterministic dead
/// value); subsequent remapping communication is restricted to the
/// region.
struct LiveRegionStmt {
  ArrayId array = -1;
  Region region;
};

using StmtNode = std::variant<RefStmt, RealignStmt, RedistributeStmt, IfStmt,
                              LoopStmt, CallStmt, KillStmt, LiveRegionStmt>;

struct Stmt {
  int id = -1;  ///< unique within the routine, assigned by Program
  SourceLoc loc;
  std::string label;  ///< optional, for printing and tests ("1", "S2", ...)
  StmtNode node;
};

StmtPtr make_stmt(StmtNode node, SourceLoc loc = {}, std::string label = {});

namespace detail {
template <class StmtT, class Fn>
void walk_stmt(StmtT& stmt, const Fn& fn) {
  fn(stmt);
  std::visit(
      [&fn](auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, IfStmt>) {
          for (auto& child : node.then_body) walk_stmt(*child, fn);
          for (auto& child : node.else_body) walk_stmt(*child, fn);
        } else if constexpr (std::is_same_v<T, LoopStmt>) {
          for (auto& child : node.body) walk_stmt(*child, fn);
        }
      },
      stmt.node);
}
}  // namespace detail

/// Calls `fn(Stmt&)` for every statement in the block, pre-order, recursing
/// into if/loop bodies.
template <class Fn>
void for_each_stmt(const Block& block, const Fn& fn) {
  for (const auto& stmt : block) detail::walk_stmt(*stmt, fn);
}

}  // namespace hpfc::ir
