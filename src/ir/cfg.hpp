// Control-flow graph over the structured AST. Call statements are expanded
// into a CallPre -> Call -> CallPost chain so that the implicit argument
// remappings of the paper's Figure 24 (v_b before the call, v_a after it)
// have CFG anchors; Entry and Exit nodes bracket the routine.
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"

namespace hpfc::ir {

enum class CfgKind {
  Entry,
  Exit,
  Plain,     ///< ref / realign / redistribute / kill statement
  Branch,    ///< the condition of an IfStmt
  Join,      ///< synthetic merge after an if
  LoopHead,  ///< loop entry test (zero-trip loops exit from here)
  LoopLatch, ///< bottom-test of a non-zero-trip loop
  CallPre,   ///< v_b: actual -> dummy-mapped copy
  Call,      ///< the call itself (argument effects per intent, Figure 25)
  CallPost,  ///< v_a: restore the reaching mapping (Figure 18)
};

const char* to_string(CfgKind kind);

struct CfgNode {
  int id = -1;
  CfgKind kind = CfgKind::Plain;
  const Stmt* stmt = nullptr;  ///< null for Entry/Exit/Join
  std::vector<int> preds;
  std::vector<int> succs;
};

class Cfg {
 public:
  static Cfg build(const Program& program);

  [[nodiscard]] const std::vector<CfgNode>& nodes() const { return nodes_; }
  [[nodiscard]] const CfgNode& node(int id) const;
  [[nodiscard]] int entry() const { return entry_; }
  [[nodiscard]] int exit() const { return exit_; }
  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }

  /// Node ids in reverse post-order (good order for forward dataflow);
  /// iterate it backwards for backward dataflow.
  [[nodiscard]] const std::vector<int>& rpo() const { return rpo_; }

  [[nodiscard]] std::string to_string(const Program& program) const;

 private:
  int add_node(CfgKind kind, const Stmt* stmt);
  void add_edge(int from, int to);
  /// Builds the chain for a block; returns {first, last} node ids, or
  /// {-1, -1} for an empty block.
  std::pair<int, int> build_block(const Block& block);
  void compute_rpo();

  std::vector<CfgNode> nodes_;
  int entry_ = -1;
  int exit_ = -1;
  std::vector<int> rpo_;
};

}  // namespace hpfc::ir
