// A Program is one HPF-lite routine: declarations plus a structured body.
// It corresponds to the unit the paper compiles (a subroutine with dummy
// arguments, local arrays and explicit interfaces for its callees).
#pragma once

#include <string>
#include <vector>

#include "ir/stmt.hpp"
#include "ir/symbols.hpp"

namespace hpfc::ir {

class Program {
 public:
  std::string name = "main";
  std::vector<ProcsDecl> procs;
  std::vector<TemplateDecl> templates;
  std::vector<ArrayDecl> arrays;
  std::vector<InterfaceDecl> interfaces;
  Block body;

  [[nodiscard]] int find_procs(const std::string& name) const;
  [[nodiscard]] int find_template(const std::string& name) const;
  [[nodiscard]] ArrayId find_array(const std::string& name) const;
  [[nodiscard]] InterfaceId find_interface(const std::string& name) const;

  [[nodiscard]] const ArrayDecl& array(ArrayId id) const;
  [[nodiscard]] const TemplateDecl& template_decl(TemplateId id) const;
  [[nodiscard]] const InterfaceDecl& interface(InterfaceId id) const;

  /// The initial two-level mapping of an array (alignment + its template's
  /// initial distribution).
  [[nodiscard]] mapping::FullMapping initial_mapping(ArrayId id) const;

  /// Distributed arrays, i.e. those with a mapping (analysis scope).
  [[nodiscard]] std::vector<ArrayId> mapped_arrays() const;

  /// Assigns statement ids (pre-order) and checks basic well-formedness
  /// (symbols resolve, shapes are consistent, every used template has an
  /// initial distribution, call arities match interfaces). Reports problems
  /// to `diags`; returns true when no error was found.
  bool finalize(DiagnosticEngine& diags);

  [[nodiscard]] int stmt_count() const { return stmt_count_; }
  /// Statements indexed by id (valid after finalize()).
  [[nodiscard]] const std::vector<const Stmt*>& statements() const {
    return stmts_;
  }
  [[nodiscard]] const Stmt& stmt(int id) const;

  /// Multi-line listing of the routine (declarations + body).
  [[nodiscard]] std::string to_string() const;

 private:
  int stmt_count_ = 0;
  std::vector<const Stmt*> stmts_;
};

}  // namespace hpfc::ir
