#include "ir/program.hpp"

#include <sstream>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace hpfc::ir {

const char* to_string(Intent intent) {
  switch (intent) {
    case Intent::In: return "in";
    case Intent::Out: return "out";
    case Intent::InOut: return "inout";
  }
  return "?";
}

namespace {

template <class Decls>
int find_by_name(const Decls& decls, const std::string& name) {
  for (std::size_t i = 0; i < decls.size(); ++i)
    if (decls[i].name == name) return static_cast<int>(i);
  return -1;
}

}  // namespace

int Program::find_procs(const std::string& name) const {
  return find_by_name(procs, name);
}
int Program::find_template(const std::string& name) const {
  return find_by_name(templates, name);
}
ArrayId Program::find_array(const std::string& name) const {
  return find_by_name(arrays, name);
}
InterfaceId Program::find_interface(const std::string& name) const {
  return find_by_name(interfaces, name);
}

const ArrayDecl& Program::array(ArrayId id) const {
  HPFC_ASSERT(id >= 0 && id < static_cast<int>(arrays.size()));
  return arrays[static_cast<std::size_t>(id)];
}
const TemplateDecl& Program::template_decl(TemplateId id) const {
  HPFC_ASSERT(id >= 0 && id < static_cast<int>(templates.size()));
  return templates[static_cast<std::size_t>(id)];
}
const InterfaceDecl& Program::interface(InterfaceId id) const {
  HPFC_ASSERT(id >= 0 && id < static_cast<int>(interfaces.size()));
  return interfaces[static_cast<std::size_t>(id)];
}

mapping::FullMapping Program::initial_mapping(ArrayId id) const {
  const ArrayDecl& decl = array(id);
  HPFC_ASSERT_MSG(decl.has_mapping, "array has no mapping");
  const TemplateDecl& tmpl = template_decl(decl.template_id);
  HPFC_ASSERT_MSG(tmpl.has_initial_dist, "template has no distribution");
  mapping::FullMapping fm;
  fm.template_id = decl.template_id;
  fm.template_shape = tmpl.shape;
  fm.align = decl.align;
  fm.dist = tmpl.initial_dist;
  return fm;
}

std::vector<ArrayId> Program::mapped_arrays() const {
  std::vector<ArrayId> result;
  for (std::size_t i = 0; i < arrays.size(); ++i)
    if (arrays[i].has_mapping) result.push_back(static_cast<ArrayId>(i));
  return result;
}

const Stmt& Program::stmt(int id) const {
  HPFC_ASSERT(id >= 0 && id < stmt_count_);
  return *stmts_[static_cast<std::size_t>(id)];
}

bool Program::finalize(DiagnosticEngine& diags) {
  stmt_count_ = 0;
  stmts_.clear();
  for_each_stmt(body, [this](Stmt& s) {
    s.id = stmt_count_++;
    stmts_.push_back(&s);
  });

  const auto check_array = [&](ArrayId id, SourceLoc loc) {
    if (id < 0 || id >= static_cast<int>(arrays.size())) {
      diags.error(DiagId::UnknownSymbol, loc, "unknown array id");
      return false;
    }
    return true;
  };

  // Declarations.
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    const ArrayDecl& a = arrays[i];
    if (!a.has_mapping) continue;
    if (a.template_id < 0 ||
        a.template_id >= static_cast<int>(templates.size())) {
      diags.error(DiagId::UnknownSymbol, {},
                  "array " + a.name + " aligned to unknown template");
      continue;
    }
    const TemplateDecl& t = template_decl(a.template_id);
    if (!t.has_initial_dist) {
      diags.error(DiagId::BadMapping, {},
                  "template " + t.name + " (used by " + a.name +
                      ") has no initial distribution");
      continue;
    }
    const mapping::FullMapping fm = initial_mapping(static_cast<ArrayId>(i));
    if (std::string err = fm.validate(a.shape); !err.empty())
      diags.error(DiagId::BadMapping, {}, a.name + ": " + err);
  }

  // Statements.
  for_each_stmt(body, [&](const Stmt& s) {
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, RefStmt>) {
            for (const ArrayId a : node.reads) check_array(a, s.loc);
            for (const ArrayId a : node.writes) check_array(a, s.loc);
            for (const ArrayId a : node.defines) check_array(a, s.loc);
          } else if constexpr (std::is_same_v<T, RealignStmt>) {
            if (!check_array(node.array, s.loc)) return;
            if (node.target_template < 0 ||
                node.target_template >= static_cast<int>(templates.size()))
              diags.error(DiagId::UnknownSymbol, s.loc,
                          "realign onto unknown template");
          } else if constexpr (std::is_same_v<T, RedistributeStmt>) {
            if (node.target_template < 0 ||
                node.target_template >= static_cast<int>(templates.size())) {
              diags.error(DiagId::UnknownSymbol, s.loc,
                          "redistribute of unknown template");
              return;
            }
            const TemplateDecl& t = template_decl(node.target_template);
            if (std::string err = node.dist.validate(t.shape); !err.empty())
              diags.error(DiagId::BadMapping, s.loc, t.name + ": " + err);
          } else if constexpr (std::is_same_v<T, CallStmt>) {
            if (node.interface_id < 0 ||
                node.interface_id >= static_cast<int>(interfaces.size())) {
              diags.error(
                  DiagId::MissingInterface, s.loc,
                  "call to " + node.callee +
                      " without an explicit interface (restriction 2)");
              return;
            }
            const InterfaceDecl& itf = interface(node.interface_id);
            if (itf.dummies.size() != node.args.size()) {
              std::ostringstream os;
              os << "call to " << node.callee << " passes " << node.args.size()
                 << " array argument(s), interface declares "
                 << itf.dummies.size();
              diags.error(DiagId::BadArgumentCount, s.loc, os.str());
              return;
            }
            for (std::size_t i = 0; i < node.args.size(); ++i) {
              if (!check_array(node.args[i], s.loc)) continue;
              const ArrayDecl& actual = array(node.args[i]);
              const DummySpec& dummy = itf.dummies[i];
              if (!(actual.shape == dummy.shape)) {
                diags.error(DiagId::BadMapping, s.loc,
                            "argument " + actual.name + " of " + node.callee +
                                ": shape " + actual.shape.to_string() +
                                " does not match dummy " + dummy.name +
                                dummy.shape.to_string());
              }
            }
          } else if constexpr (std::is_same_v<T, KillStmt>) {
            check_array(node.array, s.loc);
          } else if constexpr (std::is_same_v<T, LiveRegionStmt>) {
            if (!check_array(node.array, s.loc)) return;
            const ArrayDecl& decl = array(node.array);
            if (static_cast<int>(node.region.size()) != decl.shape.rank()) {
              diags.error(DiagId::BadDirective, s.loc,
                          "live region rank does not match array " +
                              decl.name);
              return;
            }
            for (int d = 0; d < decl.shape.rank(); ++d) {
              const auto& [lo, hi] = node.region[static_cast<std::size_t>(d)];
              if (lo < 0 || hi > decl.shape.extent(d) || lo >= hi) {
                diags.error(DiagId::BadDirective, s.loc,
                            "live region bounds out of range for " +
                                decl.name);
                return;
              }
            }
          }
        },
        s.node);
  });

  return !diags.has_errors();
}

std::string Program::to_string() const {
  std::ostringstream os;
  os << "routine " << name << "\n";
  for (const auto& p : procs)
    os << "  processors " << p.name << p.shape.to_string() << "\n";
  for (const auto& t : templates) {
    os << "  template " << t.name << t.shape.to_string();
    if (t.has_initial_dist) os << " distribute" << t.initial_dist.to_string();
    if (t.implicit) os << "  ! implicit";
    os << "\n";
  }
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    const ArrayDecl& a = arrays[i];
    os << "  " << (a.is_dummy ? "dummy" : "array") << " " << a.name
       << a.shape.to_string();
    if (a.is_dummy) os << " intent(" << ir::to_string(a.intent) << ")";
    if (a.has_mapping)
      os << " align" << a.align.to_string() << " with "
         << template_decl(a.template_id).name;
    os << "\n";
  }

  int depth = 1;
  const std::function<void(const Block&)> print_block = [&](const Block& b) {
    for (const auto& sp : b) {
      const Stmt& s = *sp;
      const std::string pad(static_cast<std::size_t>(depth * 2), ' ');
      os << pad;
      if (!s.label.empty()) os << "[" << s.label << "] ";
      std::visit(
          [&](const auto& node) {
            using T = std::decay_t<decltype(node)>;
            if constexpr (std::is_same_v<T, RefStmt>) {
              os << "ref";
              if (!node.reads.empty()) {
                os << " read(";
                for (std::size_t k = 0; k < node.reads.size(); ++k)
                  os << (k ? "," : "") << array(node.reads[k]).name;
                os << ")";
              }
              if (!node.writes.empty()) {
                os << " write(";
                for (std::size_t k = 0; k < node.writes.size(); ++k)
                  os << (k ? "," : "") << array(node.writes[k]).name;
                os << ")";
              }
              if (!node.defines.empty()) {
                os << " define(";
                for (std::size_t k = 0; k < node.defines.size(); ++k)
                  os << (k ? "," : "") << array(node.defines[k]).name;
                os << ")";
              }
              os << "\n";
            } else if constexpr (std::is_same_v<T, RealignStmt>) {
              os << "realign " << array(node.array).name << " with "
                 << template_decl(node.target_template).name
                 << node.align.to_string() << "\n";
            } else if constexpr (std::is_same_v<T, RedistributeStmt>) {
              os << "redistribute " << template_decl(node.target_template).name
                 << node.dist.to_string() << "\n";
            } else if constexpr (std::is_same_v<T, IfStmt>) {
              os << "if\n";
              ++depth;
              print_block(node.then_body);
              --depth;
              if (!node.else_body.empty()) {
                os << pad << "else\n";
                ++depth;
                print_block(node.else_body);
                --depth;
              }
              os << pad << "endif\n";
            } else if constexpr (std::is_same_v<T, LoopStmt>) {
              os << "loop trip=" << node.trip_count
                 << (node.may_zero_trip ? "" : " nonzero") << "\n";
              ++depth;
              print_block(node.body);
              --depth;
              os << pad << "endloop\n";
            } else if constexpr (std::is_same_v<T, CallStmt>) {
              os << "call " << node.callee << "(";
              for (std::size_t k = 0; k < node.args.size(); ++k)
                os << (k ? "," : "") << array(node.args[k]).name;
              os << ")\n";
            } else if constexpr (std::is_same_v<T, KillStmt>) {
              os << "kill " << array(node.array).name << "\n";
            } else if constexpr (std::is_same_v<T, LiveRegionStmt>) {
              os << "live " << array(node.array).name << "(";
              for (std::size_t d = 0; d < node.region.size(); ++d) {
                if (d > 0) os << ",";
                os << node.region[d].first << ":" << node.region[d].second;
              }
              os << ")\n";
            }
          },
          s.node);
    }
  };
  print_block(body);
  os << "end\n";
  return os.str();
}

}  // namespace hpfc::ir
