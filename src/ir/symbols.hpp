// Symbol tables of an HPF-lite routine: processor arrangements, templates,
// distributed arrays (locals and dummy arguments), and the explicit
// interfaces of callees. Per the paper's restriction 2, interfaces are
// mandatory and prescriptive: they fully describe the mapping and intent of
// every dummy argument, which lets the caller handle argument remappings
// locally (§2.2).
#pragma once

#include <string>
#include <vector>

#include "mapping/mapping.hpp"
#include "mapping/shape.hpp"

namespace hpfc::ir {

using ArrayId = int;
using TemplateId = int;
using ProcsId = int;
using InterfaceId = int;

enum class Intent { In, Out, InOut };
const char* to_string(Intent intent);

struct ProcsDecl {
  std::string name;
  mapping::Shape shape;
};

struct TemplateDecl {
  std::string name;
  mapping::Shape shape;
  /// Initial distribution (every used template must have one — sema checks).
  mapping::Distribution initial_dist;
  bool has_initial_dist = false;
  /// True for the implicit template created by distributing an array
  /// directly (DISTRIBUTE A(...)).
  bool implicit = false;
};

struct ArrayDecl {
  std::string name;
  mapping::Shape shape;
  bool is_dummy = false;
  Intent intent = Intent::InOut;  ///< meaningful for dummies
  /// Initial two-level mapping (template + alignment); the distribution
  /// component is the template's initial one.
  TemplateId template_id = -1;
  mapping::Alignment align;
  bool has_mapping = false;

  /// May the array be remapped (DYNAMIC attribute; also set implicitly by
  /// any realign/redistribute that touches it).
  bool dynamic = false;
};

/// One dummy argument in an explicit interface.
struct DummySpec {
  std::string name;
  mapping::Shape shape;
  Intent intent = Intent::InOut;
  /// The prescriptive mapping the callee requires.
  mapping::FullMapping required;
};

struct InterfaceDecl {
  std::string name;
  std::vector<DummySpec> dummies;
};

}  // namespace hpfc::ir
